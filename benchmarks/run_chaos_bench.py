"""Chaos benchmark: selection drift under faults; writes BENCH_chaos.json.

Runs :func:`repro.bench.chaos.chaos_sweep` — the Table-3 selection
comparison on clusters degraded by deterministic straggler fault plans of
rising severity, recalibrated on the faulted platform with the robustness
knobs on — and asserts the ISSUE 3 acceptance criteria:

1. at **severity 0** the faulted pipeline is byte-identical to the
   pristine one (the disabled plan leaves every fingerprint untouched);
2. at **severity <= 0.02** the strict-quality calibration still passes
   and model-based selection stays **within 10% of the measured oracle**;
3. a strict ``build_artifact`` on the severity-0.02 faulted cluster
   succeeds (the quality gate tolerates a mild straggler).

Usage::

    PYTHONPATH=src python benchmarks/run_chaos_bench.py --smoke
    PYTHONPATH=src python benchmarks/run_chaos_bench.py            # full sweep
    PYTHONPATH=src python benchmarks/run_chaos_bench.py --jobs 8
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench.chaos import chaos_sweep, format_chaos, severity_plan  # noqa: E402
from repro.clusters import MINICLUSTER  # noqa: E402
from repro.errors import ArtifactError  # noqa: E402
from repro.exec import ParallelRunner, cpu_count  # noqa: E402
from repro.service.artifact import build_artifact  # noqa: E402
from repro.units import KiB, log_spaced_sizes  # noqa: E402

#: The acceptance bar: model within this much of the oracle at mild faults.
DRIFT_BUDGET_PERCENT = 10.0

#: "Mild": the acceptance criterion's straggler severity.
MILD_SEVERITY = 0.02


def run(smoke: bool, jobs: int, seed: int) -> dict:
    runner = ParallelRunner(jobs=jobs)
    if smoke:
        severities = (0.0, MILD_SEVERITY)
        max_reps = 3
        procs = max(2, MINICLUSTER.max_procs // 2)
    else:
        severities = (0.0, 0.01, MILD_SEVERITY, 0.05, 0.1)
        max_reps = 6
        procs = max(2, MINICLUSTER.max_procs // 2)

    started = time.perf_counter()
    reports = chaos_sweep(
        MINICLUSTER,
        procs=procs,
        severities=severities,
        max_reps=max_reps,
        seed=seed,
        runner=runner,
    )
    sweep_seconds = time.perf_counter() - started
    print(format_chaos(reports))

    # 1. Severity 0 is the pristine pipeline, bit-for-bit.
    clean = severity_plan(MINICLUSTER, procs, 0.0)
    assert not clean.enabled(), "severity 0 must be a disabled plan"
    faulted = MINICLUSTER.with_faults(severity_plan(MINICLUSTER, procs, 0.1))
    assert faulted.fingerprint() != MINICLUSTER.fingerprint()

    # 2. Mild faults: strict calibration passes, drift within budget.
    for report in reports:
        if report.severity <= MILD_SEVERITY:
            assert report.strict_ok, (
                f"strict calibration failed at severity {report.severity}: "
                f"{report.quality_failures}"
            )
            assert report.max_model_degradation <= DRIFT_BUDGET_PERCENT, (
                f"severity {report.severity}: model drifted "
                f"{report.max_model_degradation:.2f}% from the oracle "
                f"(budget {DRIFT_BUDGET_PERCENT}%)"
            )

    # 3. Strict artifact build succeeds on the mildly faulted cluster.
    mild = MINICLUSTER.with_faults(
        severity_plan(MINICLUSTER, procs, MILD_SEVERITY)
    )
    try:
        artifact = build_artifact(
            mild,
            proc_points=(4, procs),
            size_points=tuple(log_spaced_sizes(8 * KiB, 1024 * KiB, 4)),
            max_reps=max_reps,
            seed=seed,
            runner=runner,
            strict=True,
        )
    except ArtifactError as error:
        raise AssertionError(
            f"strict build refused a {MILD_SEVERITY:.0%}-severity "
            f"straggler: {error}"
        ) from None
    print(f"strict artifact build OK: {artifact.artifact_id}")

    print(f"sweep completed in {sweep_seconds:.1f} s "
          f"({'smoke' if smoke else 'full'}, jobs={jobs})")
    return {
        "benchmark": "chaos",
        "mode": "smoke" if smoke else "full",
        "cluster": MINICLUSTER.name,
        "procs": procs,
        "jobs": jobs,
        "seed": seed,
        "sweep_seconds": sweep_seconds,
        "drift_budget_percent": DRIFT_BUDGET_PERCENT,
        "strict_artifact": artifact.artifact_id,
        "reports": [report.as_dict() for report in reports],
        "python": platform.python_version(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="two severities, low rep count (CI budget)")
    parser.add_argument("--jobs", type=int, default=min(4, cpu_count()))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=str(REPO / "BENCH_chaos.json"))
    args = parser.parse_args()

    record = run(args.smoke, args.jobs, args.seed)
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"record appended to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
