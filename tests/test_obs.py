"""Tests for the observability layer (``repro.obs``).

Covers the span core (nesting, identity, thread-awareness, disabled-path
no-ops), the exporters (JSONL round trip, Chrome trace validity, tree
reconstruction), the span-to-metrics bridge, and the end-to-end wiring:
a traced calibration / artifact build emits the phase tree the CI smoke
job asserts on, and the exec runner annotates cache behaviour.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.clusters import MINICLUSTER
from repro.exec.runner import ParallelRunner
from repro.obs.spans import NULL_SPAN, SpanRecorder
from repro.service.artifact import build_artifact
from repro.service.metrics import Histogram
from repro.units import KiB


@pytest.fixture()
def recorder():
    """A fresh, enabled, private recorder (the global one stays off)."""
    return SpanRecorder(enabled=True)


@pytest.fixture()
def global_tracing():
    """Enable the process-wide recorder for one test, guaranteed reset."""
    recorder = obs.enable()
    recorder.clear()
    yield recorder
    obs.disable()
    recorder.clear()


class TestSpanCore:
    def test_span_records_duration_and_attrs(self, recorder):
        with recorder.span("work", kind="test") as span:
            span.set_attr("extra", 7)
        [finished] = recorder.finished()
        assert finished.name == "work"
        assert finished.attributes == {"kind": "test", "extra": 7}
        assert finished.end is not None and finished.duration >= 0.0

    def test_nesting_links_parent_and_trace(self, recorder):
        with recorder.span("outer") as outer:
            with recorder.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        inner_span, outer_span = recorder.finished()
        assert inner_span.name == "inner"
        assert inner_span.parent_id == outer_span.span_id

    def test_sibling_spans_share_trace_not_parent(self, recorder):
        with recorder.span("root") as root:
            with recorder.span("a"):
                pass
            with recorder.span("b") as b:
                assert b.parent_id == root.span_id
        names = [s.name for s in recorder.finished()]
        assert names == ["a", "b", "root"]

    def test_distinct_roots_get_distinct_traces(self, recorder):
        with recorder.span("first") as a:
            pass
        with recorder.span("second") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_disabled_recorder_returns_null_span(self):
        recorder = SpanRecorder(enabled=False)
        span = recorder.span("anything")
        assert span is NULL_SPAN
        with span as s:
            s.set_attr("ignored", 1)  # must not raise
        assert recorder.finished() == []

    def test_forced_span_is_real_but_not_retained(self):
        recorder = SpanRecorder(enabled=False)
        with recorder.span("http.request", force=True) as span:
            pass
        assert span is not NULL_SPAN
        assert span.trace_id and span.duration >= 0.0
        assert recorder.finished() == []

    def test_error_annotated(self, recorder):
        with pytest.raises(ValueError):
            with recorder.span("boom"):
                raise ValueError("no")
        [span] = recorder.finished()
        assert span.attributes["error"] == "ValueError"

    def test_decorator(self, recorder):
        @recorder.traced("double")
        def double(x):
            return 2 * x

        assert double(21) == 42
        [span] = recorder.finished()
        assert span.name == "double"

    def test_threads_do_not_share_the_span_stack(self, recorder):
        seen = {}

        def worker():
            with recorder.span("thread-side") as span:
                seen["parent"] = span.parent_id
                seen["thread_id"] = span.thread_id

        with recorder.span("main-side"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's span started in a copied context snapshot; it must
        # carry its own thread id either way.
        assert seen["thread_id"] != threading.get_ident()

    def test_ids_embed_pid_and_are_unique(self, recorder):
        with recorder.span("a") as a:
            pass
        with recorder.span("b") as b:
            pass
        import os

        assert a.span_id.startswith(f"{os.getpid():x}-")
        assert a.span_id != b.span_id
        assert len({a.trace_id, b.trace_id}) == 2

    def test_finish_hooks_run_even_when_disabled(self):
        recorder = SpanRecorder(enabled=False)
        calls = []
        recorder.add_finish_hook(lambda span: calls.append(span.name))
        with recorder.span("forced", force=True):
            pass
        assert calls == ["forced"]

    def test_broken_hook_does_not_break_work(self, recorder):
        def bad_hook(span):
            raise RuntimeError("hook bug")

        recorder.add_finish_hook(bad_hook)
        with recorder.span("survives"):
            pass
        assert [s.name for s in recorder.finished()] == ["survives"]


class TestExporters:
    def _sample(self, recorder):
        with recorder.span("parent", phase="build"):
            with recorder.span("child"):
                pass
        return recorder.finished()

    def test_jsonl_round_trip(self, recorder, tmp_path):
        spans = self._sample(recorder)
        path = obs.save_jsonl(spans, tmp_path / "spans.jsonl")
        records = obs.load_jsonl(path)
        assert [r["name"] for r in records] == ["child", "parent"]
        assert records[1]["attributes"] == {"phase": "build"}

    def test_build_tree(self, recorder):
        spans = self._sample(recorder)
        roots = obs.build_tree([s.to_dict() for s in spans])
        assert len(roots) == 1
        assert roots[0]["name"] == "parent"
        assert [c["name"] for c in roots[0]["children"]] == ["child"]

    def test_build_tree_promotes_orphans(self):
        records = [
            {"name": "lost", "span_id": "x-1", "parent_id": "x-999"},
            {"name": "root", "span_id": "x-2", "parent_id": None},
        ]
        roots = obs.build_tree(records)
        assert {r["name"] for r in roots} == {"lost", "root"}

    def test_chrome_trace_is_valid_and_loadable(self, recorder, tmp_path):
        spans = self._sample(recorder)
        path = obs.save_chrome_trace(spans, tmp_path / "trace.json")
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        meta = [e for e in events if e.get("ph") == "M"]
        assert len(complete) == 2 and meta
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        # Round trip through the chrome loader preserves the tree.
        records = obs.load_chrome_trace(path)
        roots = obs.build_tree(records)
        assert roots[0]["name"] == "parent"

    def test_save_dispatches_on_suffix(self, recorder, tmp_path):
        self._sample(recorder)
        jsonl = obs.save(recorder, tmp_path / "out.jsonl")
        chrome = obs.save(recorder, tmp_path / "out.json")
        assert len(obs.load_jsonl(jsonl)) == 2
        assert "traceEvents" in json.loads(chrome.read_text())

    def test_streaming_jsonl(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        recorder = SpanRecorder()
        recorder.enable(path)
        with recorder.span("streamed"):
            pass
        recorder.disable()
        assert obs.load_jsonl(path)[0]["name"] == "streamed"


class TestBridge:
    def test_bridge_feeds_histogram(self, recorder):
        histogram = Histogram("bridge_seconds", "test")
        bridge = obs.SpanMetricsBridge({"http.request": histogram})
        recorder.add_finish_hook(bridge)
        with recorder.span("http.request"):
            pass
        with recorder.span("unrelated"):
            pass
        assert histogram.count == 1 and bridge.observed == 1


class TestWiring:
    def test_runner_annotates_cache_behaviour(self, global_tracing):
        from repro.exec.job import SimJob

        runner = ParallelRunner(jobs=1)
        job = SimJob(
            spec=MINICLUSTER, kind="bcast", procs=4, nbytes=8 * KiB,
            segment_size=8 * KiB, algorithm="binomial",
        )
        runner.run([job])
        runner.run([job])  # single-job memo hit: fast path, no span
        runner.run([job, job])  # multi-job batch: span with hit counts
        spans = global_tracing.finished()
        runs = [s for s in spans if s.name == "exec.run"]
        assert len(runs) == 2
        assert runs[0].attributes["executed"] == 1
        assert runs[1].attributes["memo_hits"] == 2
        assert runner.stats.memo_hits == 3
        job_spans = [s for s in spans if s.name == "exec.job"]
        # Only executed jobs get per-job spans; hits are counted on the
        # exec.run span instead (a span per dict lookup costs more than
        # the lookup).
        assert {s.attributes["source"] for s in job_spans} == {"sim"}
        assert len(job_spans) == 1
        runner.close()

    def test_traced_build_covers_all_phases(self, global_tracing, mini_platform):
        artifact = build_artifact(
            MINICLUSTER,
            proc_points=(2, 4, 8),
            size_points=(8 * KiB, 64 * KiB),
            platforms={"bcast": mini_platform},
        )
        assert artifact.operations == ["bcast"]
        names = {s.name for s in global_tracing.finished()}
        assert {"artifact.build", "artifact.calibrate", "artifact.tables",
                "artifact.codegen", "artifact.package"} <= names
        # The phases nest under the build root.
        roots = obs.build_tree([s.to_dict() for s in global_tracing.finished()])
        build_roots = [r for r in roots if r["name"] == "artifact.build"]
        assert len(build_roots) == 1
        child_names = {c["name"] for c in build_roots[0]["children"]}
        assert {"artifact.calibrate", "artifact.tables",
                "artifact.codegen", "artifact.package"} <= child_names

    def test_traced_calibration_phases(self, global_tracing):
        from repro.estimation.workflow import calibrate_platform
        from repro.units import log_spaced_sizes

        calibrate_platform(
            MINICLUSTER,
            procs=4,
            sizes=log_spaced_sizes(8 * KiB, 64 * KiB, 3),
            gamma_max_procs=3,
            max_reps=3,
            algorithms=["binomial"],
        )
        names = {s.name for s in global_tracing.finished()}
        assert {"calibrate.platform", "calibrate.prefetch",
                "estimate.gamma", "estimate.alphabeta"} <= names
        alphabeta = [
            s for s in global_tracing.finished()
            if s.name == "estimate.alphabeta"
        ]
        assert alphabeta[0].attributes["algorithm"] == "binomial"
