"""Differential tests: FlatDecisionTable vs DecisionTable.

The serving hot path answers queries from flat parallel arrays
(:class:`repro.selection.flat_table.FlatDecisionTable`); correctness is
defined as bit-identity with :meth:`DecisionTable.lookup` — same floor
semantics, same below-grid clamp flag.  The property test here fuzzes
randomly-built tables for **all eight collectives** with on-grid,
off-grid, below-grid and degenerate queries and compares every answer.
"""

import random

import pytest

from repro.clusters import MINICLUSTER
from repro.collectives.registry import algorithm_names, operations
from repro.errors import SelectionError
from repro.selection import DecisionTable, FlatDecisionTable
from repro.selection.oracle import Selection
from repro.service import build_artifact
from repro.units import KiB, MiB, log_spaced_sizes

EIGHT_OPERATIONS = (
    "allgather", "allreduce", "alltoall", "barrier",
    "bcast", "gather", "reduce", "scatter",
)


def random_table(operation: str, rng: random.Random) -> DecisionTable:
    """A random but valid decision grid for ``operation``."""
    names = algorithm_names(operation)
    proc_points = tuple(sorted(rng.sample(range(2, 200), rng.randint(1, 9))))
    if operation == "barrier":
        # Barrier tables are built over the degenerate size grid (the
        # operation has no message), matching build_artifact.
        size_points = (0,)
    else:
        size_points = tuple(
            sorted(rng.sample(range(1, 1 << 22), rng.randint(1, 9)))
        )
    choices = tuple(
        tuple(
            Selection(
                rng.choice(names),
                rng.choice((0, 0, 8192, 65536)),
                operation,
            )
            for _ in size_points
        )
        for _ in proc_points
    )
    return DecisionTable(
        proc_points=proc_points, size_points=size_points, choices=choices
    )


def fuzz_queries(table: DecisionTable, rng: random.Random, count: int):
    """On-grid, off-grid, above-grid, below-grid and boundary queries."""
    procs_points = table.proc_points
    size_points = table.size_points
    queries = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.25:  # exactly on grid
            procs = rng.choice(procs_points)
            nbytes = rng.choice(size_points)
        elif roll < 0.5:  # off-grid inside / above the grid
            procs = rng.randint(procs_points[0], procs_points[-1] * 2)
            nbytes = rng.randint(size_points[0], size_points[-1] * 2 + 1)
        elif roll < 0.75:  # below the grid on at least one axis
            procs = rng.randint(0, max(procs_points[0] - 1, 0))
            nbytes = rng.randint(0, max(size_points[0] - 1, 0))
        else:  # boundary +/- 1
            procs = rng.choice(procs_points) + rng.choice((-1, 0, 1))
            nbytes = rng.choice(size_points) + rng.choice((-1, 0, 1))
        queries.append((procs, nbytes))
    # Degenerate corners, always included.
    queries += [
        (procs_points[0], size_points[0]),
        (procs_points[-1], size_points[-1]),
        (0, 0),
        (1, 1),
        (procs_points[-1] + 10**6, size_points[-1] + 10**9),
    ]
    return queries


class TestDifferential:
    @pytest.mark.parametrize("operation", EIGHT_OPERATIONS)
    def test_bit_identical_to_decision_table(self, operation):
        assert operation in operations()
        rng = random.Random(EIGHT_OPERATIONS.index(operation))
        for round_index in range(10):
            table = random_table(operation, rng)
            flat = FlatDecisionTable.from_table(table, operation=operation)
            assert flat.operation == operation
            for procs, nbytes in fuzz_queries(table, rng, 200):
                selection, clamped = table.lookup(procs, nbytes)
                assert flat.lookup(procs, nbytes) == (
                    selection.algorithm,
                    selection.segment_size,
                    clamped,
                ), (operation, round_index, procs, nbytes)

    def test_lookup_many_matches_lookup(self):
        rng = random.Random(99)
        table = random_table("bcast", rng)
        flat = FlatDecisionTable.from_table(table)
        queries = fuzz_queries(table, rng, 500)
        assert flat.lookup_many(queries) == [
            flat.lookup(procs, nbytes) for procs, nbytes in queries
        ]


class TestCompilation:
    def test_from_table_deduplicates_algorithms(self):
        rng = random.Random(3)
        table = random_table("reduce", rng)
        flat = FlatDecisionTable.from_table(table, operation="reduce")
        assert len(set(flat.algorithms)) == len(flat.algorithms)
        cells = len(flat.proc_points) * len(flat.size_points)
        assert len(flat.algorithm_ids) == cells
        assert len(flat.segment_sizes) == cells
        assert all(
            0 <= algorithm_id < len(flat.algorithms)
            for algorithm_id in flat.algorithm_ids
        )
        # Round-trip: every cell decodes to the original selection.
        for i, procs in enumerate(table.proc_points):
            for j, nbytes in enumerate(table.size_points):
                assert flat.algorithms[
                    flat.algorithm_ids[i * flat.n_sizes + j]
                ] == table.choices[i][j].algorithm

    def test_empty_grid_rejected(self):
        with pytest.raises(SelectionError):
            FlatDecisionTable("bcast", (), (0,), ("x",), (), ())

    def test_cell_count_mismatch_rejected(self):
        with pytest.raises(SelectionError):
            FlatDecisionTable("bcast", (2, 4), (0,), ("x",), (0,), (0, 0))

    def test_algorithm_id_out_of_range_rejected(self):
        with pytest.raises(SelectionError):
            FlatDecisionTable("bcast", (2,), (0,), ("x",), (1,), (0,))


class TestRealArtifact:
    """The service consumes flat tables through ``flat_tables()``."""

    @pytest.fixture(scope="class")
    def artifact(self, mini_platform):
        return build_artifact(
            MINICLUSTER,
            proc_points=range(2, 17, 2),
            size_points=log_spaced_sizes(8 * KiB, 1 * MiB, 6),
            platforms={"bcast": mini_platform},
        )

    def test_flat_tables_match_entries(self, artifact):
        flats = artifact.flat_tables()
        assert set(flats) == set(artifact.entries)
        rng = random.Random(17)
        for operation, entry in artifact.entries.items():
            flat = flats[operation]
            for procs, nbytes in fuzz_queries(entry.table, rng, 300):
                selection, clamped = entry.table.lookup(procs, nbytes)
                assert flat.lookup(procs, nbytes) == (
                    selection.algorithm,
                    selection.segment_size,
                    clamped,
                )

    def test_flat_tables_memoised(self, artifact):
        assert artifact.flat_tables() is artifact.flat_tables()
