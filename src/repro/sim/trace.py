"""Optional structured tracing of simulated communication events.

Tracing is used by tests to assert fine-grained properties of the collective
implementations (e.g. that the chain broadcast really pipelines segments, or
that the root of a linear broadcast injects messages back-to-back), and by
examples to visualise algorithm execution.  It is off by default and costs
nothing when disabled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    ``kind`` is one of ``send_post``, ``send_complete``, ``recv_post``,
    ``recv_complete``; ``time`` is the simulated timestamp.
    """

    time: float
    kind: str
    rank: int
    peer: int
    tag: int
    nbytes: int


class Tracer:
    """Collects :class:`TraceEvent` records for one simulation run."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(
        self, time: float, kind: str, rank: int, peer: int, tag: int, nbytes: int
    ) -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, kind, rank, peer, tag, nbytes))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # An empty tracer is still a real tracer: never falsy (guards the
        # classic ``tracer or default`` mistake).
        return True

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def for_rank(self, rank: int) -> list[TraceEvent]:
        """All events observed at one rank, in time order."""
        return [e for e in self.events if e.rank == rank]

    def total_bytes_sent(self) -> int:
        """Sum of payload bytes over all posted sends."""
        return sum(e.nbytes for e in self.events if e.kind == "send_post")

    def clear(self) -> None:
        self.events.clear()

    # -- Chrome trace-event export -----------------------------------------

    def to_chrome_events(self) -> list[dict]:
        """The trace as Chrome trace-event dicts (``chrome://tracing``).

        ``send_post``/``send_complete`` (and ``recv_*``) pairs with the
        same ``(rank, peer, tag)`` are matched FIFO into complete ("X")
        duration events — one bar per message on the posting rank's row —
        so a simulated schedule can be inspected visually: ranks are
        threads, simulated seconds become microsecond timestamps, and the
        payload size rides along in ``args``.  A ``post`` that never
        completes becomes a zero-duration bar; a ``complete`` with no
        matching ``post`` becomes an instant ("i") event.
        """
        scale = 1e6  # simulated seconds -> trace microseconds
        chrome: list[dict] = []
        ranks: set[int] = set()
        open_spans: dict[tuple, list[TraceEvent]] = {}
        matched: list[tuple[TraceEvent, TraceEvent]] = []
        for event in self.events:
            ranks.add(event.rank)
            verb, _, phase = event.kind.partition("_")
            key = (verb, event.rank, event.peer, event.tag)
            if phase == "post":
                open_spans.setdefault(key, []).append(event)
            elif phase == "complete" and open_spans.get(key):
                matched.append((open_spans[key].pop(0), event))
            else:
                chrome.append({
                    "name": f"{event.kind} peer={event.peer}",
                    "cat": verb,
                    "ph": "i",
                    "ts": event.time * scale,
                    "pid": 0,
                    "tid": event.rank,
                    "s": "t",
                    "args": {"tag": event.tag, "nbytes": event.nbytes},
                })
        for leftovers in open_spans.values():
            for event in leftovers:
                matched.append((event, event))
        for start, end in matched:
            verb = start.kind.partition("_")[0]
            arrow = "->" if verb == "send" else "<-"
            # A receive is posted before the payload size is known (-1);
            # the completion event carries the real size.
            nbytes = end.nbytes if start.nbytes < 0 else start.nbytes
            chrome.append({
                "name": f"{verb} {start.rank}{arrow}{start.peer} "
                        f"({nbytes} B)",
                "cat": verb,
                "ph": "X",
                "ts": start.time * scale,
                "dur": (end.time - start.time) * scale,
                "pid": 0,
                "tid": start.rank,
                "args": {
                    "peer": start.peer,
                    "tag": start.tag,
                    "nbytes": nbytes,
                },
            })
        chrome.sort(key=lambda e: (e["ts"], e["tid"]))
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "args": {"name": "repro simulation"},
            }
        ] + [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
            for rank in sorted(ranks)
        ]
        return meta + chrome

    def to_chrome_json(self, *, indent: int | None = None) -> str:
        """The trace as a ``chrome://tracing`` / Perfetto JSON document."""
        document = {
            "traceEvents": self.to_chrome_events(),
            "displayTimeUnit": "ms",
        }
        return json.dumps(document, indent=indent)

    def save_chrome_trace(self, path: str | Path) -> None:
        """Write :meth:`to_chrome_json` to ``path`` (open in Perfetto)."""
        Path(path).write_text(self.to_chrome_json(indent=1) + "\n")


#: Shared disabled tracer used when no tracing was requested.
NULL_TRACER = Tracer(enabled=False)
