"""Model of the linear gather used in the α/β experiments (paper Eq. 8).

The linear-without-synchronisation gather drains ``P-1`` messages of
``m_g`` bytes through the root's single NIC, so its cost is

    T_gather(P, m_g) = (P - 1) · (α + m_g·β).

Its coefficients are *added* to the broadcast model's coefficients when the
paper's composite experiment (broadcast + gather, Eq. 7) is turned into one
linear equation in α and β (Fig. 4).
"""

from __future__ import annotations

from repro.models.base import LinearCoefficients
from repro.models.hockney import HockneyParams


def linear_gather_coefficients(procs: int, gather_bytes: int) -> LinearCoefficients:
    """``(c_α, c_β)`` of the linear gather (Eq. 8)."""
    peers = max(procs - 1, 0)
    return LinearCoefficients(peers, peers * gather_bytes)


def linear_gather_time(procs: int, gather_bytes: int, params: HockneyParams) -> float:
    """Predicted linear gather time (Eq. 8)."""
    return linear_gather_coefficients(procs, gather_bytes).evaluate(params)
