"""Discrete-event simulation substrate.

This package is the stand-in for the physical Grid'5000 clusters used in the
paper.  It provides:

* :mod:`repro.sim.engine` — a small generator-coroutine discrete-event engine
  (processes, futures, timeouts, deadlock detection);
* :mod:`repro.sim.network` — the cluster fabric model: per-host NIC egress and
  ingress serialisation, per-message overheads, wire/switch latency, and an
  eager/rendezvous point-to-point protocol switch;
* :mod:`repro.sim.noise` — seeded stochastic perturbation of network costs so
  that the statistical estimation machinery (confidence-interval driven
  repetition) is exercised meaningfully;
* :mod:`repro.sim.trace` — optional structured event tracing.
"""

from repro.sim.engine import Future, Process, Simulator
from repro.sim.network import Fabric, NetworkParams, TransferTiming
from repro.sim.noise import LognormalNoise, NoiseModel, NoNoise

__all__ = [
    "Fabric",
    "Future",
    "LognormalNoise",
    "NetworkParams",
    "NoNoise",
    "NoiseModel",
    "Process",
    "Simulator",
    "TransferTiming",
]
