"""Parallel execution of simulation jobs with layered caching.

A :class:`ParallelRunner` takes batches of :class:`~repro.exec.job.SimJob`
and returns their results *in batch order*.  Resolution is layered:

1. **in-process memo** — every result this runner has ever produced,
   keyed by job fingerprint (always on; this is what makes *prefetching*
   work even with the persistent cache disabled);
2. **persistent cache** — the cross-process, cross-session
   :class:`~repro.exec.cache.ResultCache`, if configured;
3. **execution** — remaining jobs run through
   :func:`~repro.exec.job.execute_job`, either serially or on a
   ``ProcessPoolExecutor`` with chunked dispatch.

Determinism: simulations are seeded and share no state, worker dispatch
preserves batch order (``Executor.map``), and a worker computes exactly the
float the parent would — so results are bit-for-bit identical for any
``jobs`` value, warm or cold cache.  Tests assert this
(``tests/test_exec.py``).

The typical access pattern is *prefetch then replay*: a hot caller submits
the first repetitions of every measurement in its sweep as one parallel
batch, then runs its (inherently sequential) adaptive-measurement loop,
which finds each simulation already memoised.  Adaptive loops that need
more repetitions than were prefetched fall through to serial execution of
just the extra repetitions — semantics identical to the fully serial path.
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.exec.cache import ResultCache
from repro.exec.job import BatchJob, SimJob, execute_batch_job, execute_job

#: Sleep before each pool-rebuild attempt after a worker crash.  Short:
#: the common killer (OOM, an operator's stray ``kill``) either clears
#: immediately or keeps recurring, in which case we stop paying for pools
#: and fall back to in-process execution.
_POOL_RETRY_BACKOFF = (0.05, 0.25)


@dataclass
class ExecStats:
    """Counters of one runner's activity.

    ``simulations`` counts actual simulator executions; a fully warm rerun
    of a benchmark shows ``simulations == 0``.  ``pool_failures`` counts
    worker-pool crashes survived by rebuilding the pool;
    ``fallback_batches`` counts batches that exhausted the retries and ran
    in-process instead.
    """

    simulations: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    batches: int = 0
    pool_failures: int = 0
    fallback_batches: int = 0
    #: Cells resolved through the batched engine, and how many of those
    #: were answered by another cell's result (noise-free seed dedupe).
    batched_cells: int = 0
    deduped_cells: int = 0

    def as_dict(self) -> dict:
        return {
            "simulations": self.simulations,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "pool_failures": self.pool_failures,
            "fallback_batches": self.fallback_batches,
            "batched_cells": self.batched_cells,
            "deduped_cells": self.deduped_cells,
        }


def cpu_count() -> int:
    """Usable CPU count (respects affinity masks where available)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def batch_default() -> bool:
    """Whether batched prefetching is on by default (``REPRO_BATCH``).

    On unless the environment says ``0``/empty — the batched engine is
    bit-identical to the serial path, so there is no fidelity trade-off in
    defaulting to it.
    """
    return os.environ.get("REPRO_BATCH", "1") not in ("", "0")


def _worker_init() -> None:
    """Initialise a pool worker: start from empty topology memos.

    Workers live for the whole pool generation and execute arbitrarily many
    slabs; starting each generation from a known-empty (and bounded, see
    :data:`repro.topology.builders.TREE_CACHE_MAXSIZE`) tree cache keeps
    long chaos sweeps over many (P, algorithm) pairs at a flat footprint.
    """
    from repro.topology.builders import clear_tree_caches

    clear_tree_caches()


class ParallelRunner:
    """Executes simulation jobs across processes, memoising every result.

    ``jobs`` is the worker-process count: 1 (the default) executes inline
    with no pool; ``0`` or ``None`` means "all cores".  The pool is created
    lazily on the first parallel batch and reused across batches.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        batch: bool | None = None,
    ):
        self.jobs = cpu_count() if not jobs else max(1, int(jobs))
        self.cache = cache
        self.batch = batch_default() if batch is None else bool(batch)
        self.stats = ExecStats()
        self._memo: dict[str, float] = {}
        self._pool: ProcessPoolExecutor | None = None
        atexit.register(self.close)

    def close(self) -> None:
        """Shut the worker pool down and release the cache handle."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self.cache is not None:
            self.cache.close()

    # -- execution ---------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_worker_init
        )

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _execute_batch(self, jobs: list[SimJob]) -> list[float]:
        if self.jobs == 1 or len(jobs) == 1:
            with obs.span("exec.execute", dispatch="inline", jobs=len(jobs)):
                return [execute_job(job) for job in jobs]
        # A worker dying mid-batch (OOM killer, stray signal, container
        # eviction) surfaces as BrokenProcessPool and poisons the whole
        # executor.  Jobs are pure functions of their fingerprint, so the
        # batch is safely re-runnable: rebuild the pool and retry, then
        # give up on parallelism and finish in-process.  Results stay
        # bit-identical on every path — the same simulations run, only the
        # process executing them changes.
        for backoff in _POOL_RETRY_BACKOFF:
            try:
                if self._pool is None:
                    self._pool = self._make_pool()
                # Chunked dispatch: ship several jobs per IPC round trip,
                # but keep enough chunks in flight (~4 per worker) that an
                # unlucky chunk of heavy jobs cannot serialise the tail of
                # the batch.
                chunksize = max(1, len(jobs) // (self.jobs * 4))
                with obs.span(
                    "exec.execute", dispatch="pool", jobs=len(jobs),
                    workers=self.jobs, chunksize=chunksize,
                ):
                    return list(
                        self._pool.map(execute_job, jobs, chunksize=chunksize)
                    )
            except BrokenProcessPool:
                self.stats.pool_failures += 1
                self._discard_pool()
                time.sleep(backoff)
        self.stats.fallback_batches += 1
        with obs.span("exec.execute", dispatch="fallback", jobs=len(jobs)):
            return [execute_job(job) for job in jobs]

    def run(self, batch: Sequence[SimJob]) -> list[float]:
        """Results of ``batch``, in order; simulates only unseen jobs."""
        self.stats.batches += 1
        if len(batch) == 1:
            # Fast path: a single already-memoised job is a dict lookup —
            # the per-rep shape of adaptive measurement after a prefetch.
            # It skips span bookkeeping entirely (a span would cost ~5x
            # the lookup); estimation spans carry the aggregate hit
            # counts instead.
            value = self._memo.get(batch[0].fingerprint())
            if value is not None:
                self.stats.memo_hits += 1
                return [value]
        traced = obs.is_enabled()
        memo_before, cache_before = self.stats.memo_hits, self.stats.cache_hits
        with obs.span("exec.run", jobs=len(batch)) as run_span:
            results: list[float | None] = [None] * len(batch)
            pending: list[tuple[int, SimJob, str]] = []
            for index, job in enumerate(batch):
                key = job.fingerprint()
                value = self._memo.get(key)
                if value is not None:
                    self.stats.memo_hits += 1
                    results[index] = value
                    continue
                if self.cache is not None:
                    value = self.cache.get(key)
                    if value is not None:
                        self.stats.cache_hits += 1
                        self._memo[key] = value
                        results[index] = value
                        continue
                pending.append((index, job, key))
            if pending:
                outcomes = self._execute_batch([job for _, job, _ in pending])
                for (index, _job, key), value in zip(pending, outcomes):
                    self.stats.simulations += 1
                    self._memo[key] = value
                    if self.cache is not None:
                        self.cache.put(key, value)
                    results[index] = value
            if traced:
                # Hit counts come from stats deltas so the untraced loop
                # above stays byte-for-byte the fast path.  Per-job spans
                # only cover jobs that actually simulated: memo/cache hits
                # are microsecond dict/disk lookups, and a span each would
                # cost more than the hit itself (measured >15% on a
                # warm-cache build).
                run_span.set_attrs(
                    memo_hits=self.stats.memo_hits - memo_before,
                    cache_hits=self.stats.cache_hits - cache_before,
                    executed=len(pending),
                )
                for _index, job, _key in pending:
                    with obs.span(
                        "exec.job",
                        source="sim",
                        kind=job.kind,
                        algorithm=job.algorithm,
                        procs=job.procs,
                        nbytes=job.nbytes,
                    ):
                        pass
        return results  # type: ignore[return-value]

    def run_one(self, job: SimJob) -> float:
        """Result of a single job (memo -> cache -> execute)."""
        return self.run([job])[0]

    # -- batched grid execution --------------------------------------------

    def _execute_cells(self, cells: list[SimJob]) -> list[float]:
        """Run ``cells`` through the batched engine, in order.

        Serial runners execute one inline pass; parallel runners cut the
        grid into contiguous slabs (~2 per worker: slabs are coarse on
        purpose, one IPC round trip and one shared-setup scope each) and
        ship whole slabs to pool workers, with the same crash-retry and
        in-process fallback discipline as the per-job path.
        """
        from repro.sim.batch import BatchSimulator

        if self.jobs == 1 or len(cells) <= 2:
            with obs.span("exec.execute", dispatch="batch-inline",
                          cells=len(cells)):
                return BatchSimulator().run(cells)
        slab_size = -(-len(cells) // (self.jobs * 2))
        slabs = [
            BatchJob(cells=tuple(cells[start:start + slab_size]))
            for start in range(0, len(cells), slab_size)
        ]
        for backoff in _POOL_RETRY_BACKOFF:
            try:
                if self._pool is None:
                    self._pool = self._make_pool()
                with obs.span(
                    "exec.execute", dispatch="batch-pool", cells=len(cells),
                    workers=self.jobs, slabs=len(slabs),
                ):
                    results: list[float] = []
                    for slab_results in self._pool.map(
                        execute_batch_job, slabs
                    ):
                        results.extend(slab_results)
                    return results
            except BrokenProcessPool:
                self.stats.pool_failures += 1
                self._discard_pool()
                time.sleep(backoff)
        self.stats.fallback_batches += 1
        with obs.span("exec.execute", dispatch="batch-fallback",
                      cells=len(cells)):
            return BatchSimulator().run(cells)

    def _run_batched(self, batch: list[SimJob]) -> None:
        """Warm memo and cache with ``batch`` via the batched engine.

        ``batch`` must be fingerprint-unique (the :meth:`prefetch` contract).
        Cells that would produce the same float (noise-free seed
        repetitions) collapse to one simulation *before* slabbing, so the
        dedupe works across slab boundaries; every original fingerprint
        still receives its own memo and cache entry, keeping warm-cache
        replay identical to the per-job path.
        """
        from repro.sim.batch import dedupe_key

        self.stats.batches += 1
        with obs.span("exec.run", jobs=len(batch), mode="batch") as run_span:
            pending: list[tuple[SimJob, str]] = []
            groups: dict[str, list[int]] = {}
            for job in batch:
                key = job.fingerprint()
                if key in self._memo:
                    self.stats.memo_hits += 1
                    continue
                if self.cache is not None:
                    value = self.cache.get(key)
                    if value is not None:
                        self.stats.cache_hits += 1
                        self._memo[key] = value
                        continue
                groups.setdefault(dedupe_key(job), []).append(len(pending))
                pending.append((job, key))
            representatives = [
                pending[members[0]][0] for members in groups.values()
            ]
            if representatives:
                outcomes = self._execute_cells(representatives)
                self.stats.simulations += len(representatives)
                self.stats.batched_cells += len(pending)
                self.stats.deduped_cells += len(pending) - len(representatives)
                stored: list[tuple[str, float]] = []
                for members, value in zip(groups.values(), outcomes):
                    for member in members:
                        _job, key = pending[member]
                        self._memo[key] = value
                        stored.append((key, value))
                if self.cache is not None:
                    self.cache.put_many(stored)
            if obs.is_enabled():
                run_span.set_attrs(
                    executed=len(representatives),
                    deduped=len(pending) - len(representatives),
                )

    def prefetch(self, batch: Sequence[SimJob]) -> None:
        """Warm the memo (and cache) with ``batch``, in parallel.

        Duplicate fingerprints inside ``batch`` are collapsed before
        dispatch, so callers can enumerate naively.  With :attr:`batch`
        enabled (the default) the grid goes through the batched engine —
        bit-identical results, one engine pass per slab instead of per
        cell.
        """
        unique: dict[str, SimJob] = {}
        for job in batch:
            unique.setdefault(job.fingerprint(), job)
        jobs = list(unique.values())
        if self.batch and len(jobs) > 1:
            self._run_batched(jobs)
        else:
            self.run(jobs)


# -- process-wide default runner ------------------------------------------

_default_runner: ParallelRunner | None = None


def configure(
    jobs: int | None = 1,
    cache: bool = False,
    cache_dir: str | None = None,
    batch: bool | None = None,
) -> ParallelRunner:
    """Install (and return) the process-wide default runner.

    Called by the CLI's ``--jobs`` / ``--no-cache`` / ``--cache-dir`` /
    ``--batch`` flags; library users can call it directly or pass explicit
    ``runner=`` objects to the hot callers instead.
    """
    global _default_runner
    if _default_runner is not None:
        _default_runner.close()
    _default_runner = ParallelRunner(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache else None,
        batch=batch,
    )
    return _default_runner


def default_runner() -> ParallelRunner:
    """The process-wide runner, built from the environment on first use.

    ``REPRO_JOBS`` (int; 0 = all cores), ``REPRO_CACHE`` (non-empty,
    non-"0" enables the persistent cache at ``REPRO_CACHE_DIR`` or the
    default location) and ``REPRO_BATCH`` ("0"/empty disables batched
    prefetching) configure it without code changes.  The zero-config
    default is serial execution with in-process memoisation only — exactly
    the seed behaviour — plus the (bit-identical) batched prefetch path.
    """
    global _default_runner
    if _default_runner is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
        cache_on = os.environ.get("REPRO_CACHE", "") not in ("", "0")
        _default_runner = ParallelRunner(
            jobs=jobs, cache=ResultCache() if cache_on else None
        )
    return _default_runner


def reset_default_runner() -> None:
    """Tear down the default runner (tests; re-created on next use)."""
    global _default_runner
    if _default_runner is not None:
        _default_runner.close()
        _default_runner = None
