"""Load-test the selection service; append results to BENCH_service.json.

The harness builds a selection artifact (quick: MINICLUSTER calibration;
``--full``: noise-free Gros at paper scale), starts the asyncio HTTP
server in a background thread, and drives it with concurrent keep-alive
clients issuing a seeded mix of single and batched ``POST /select``
requests.  It then:

1. verifies every served selection is **bit-identical** to an offline
   ``DecisionTable.select`` on the same artifact;
2. computes client-side latency percentiles and asserts
   **p99 < 50 ms** over **>= 1000 queries** (the ISSUE 2 acceptance
   criterion);
3. scrapes ``/metrics`` and records the server-side counters alongside.

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py
    PYTHONPATH=src python benchmarks/run_service_bench.py --clients 16
    PYTHONPATH=src python benchmarks/run_service_bench.py --full
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.clusters import GROS, MINICLUSTER  # noqa: E402
from repro.exec import ParallelRunner, cpu_count  # noqa: E402
from repro.service import (  # noqa: E402
    ArtifactRegistry,
    SelectionService,
    ServiceThread,
    build_artifact,
)
from repro.units import KiB, MiB, log_spaced_sizes  # noqa: E402

#: Latency budget of the acceptance criterion (seconds).
P99_BUDGET = 0.050

BATCH_SIZE = 16
BATCH_EVERY = 5  # every 5th request is a batch of BATCH_SIZE queries


def build_bench_artifact(full: bool, jobs: int):
    if full:
        spec = GROS.with_noise(0.0)
        kwargs = dict(procs=62, gamma_max_procs=7, max_reps=8)
        grid = dict(size_points=log_spaced_sizes(8 * KiB, 4 * MiB, 10))
    else:
        spec = MINICLUSTER
        sizes = log_spaced_sizes(8 * KiB, 1 * MiB, 6)
        kwargs = dict(procs=8, gamma_max_procs=5, max_reps=3, sizes=sizes)
        grid = dict(proc_points=range(2, 17, 2), size_points=sizes)
    runner = ParallelRunner(jobs=jobs)
    try:
        artifact = build_artifact(spec, runner=runner, **kwargs, **grid)
    finally:
        runner.close()
    return spec, artifact


def make_queries(artifact, count: int, seed: int) -> list[dict]:
    """A seeded mix of on-grid and off-grid (cluster, P, m) queries."""
    rng = random.Random(seed)
    entry = artifact.entries["bcast"]
    procs_max = entry.table.proc_points[-1]
    size_max = entry.table.size_points[-1]
    queries = []
    for _ in range(count):
        if rng.random() < 0.5:  # on-grid point
            procs = rng.choice(entry.table.proc_points)
            nbytes = rng.choice(entry.table.size_points)
        else:  # off-grid point, exercises floor semantics
            procs = rng.randint(2, procs_max)
            nbytes = rng.randint(1, size_max * 2)
        queries.append(
            {
                "cluster": artifact.cluster,
                "operation": "bcast",
                "procs": procs,
                "nbytes": nbytes,
            }
        )
    return queries


class ClientWorker(threading.Thread):
    """One keep-alive client issuing a share of the query stream."""

    def __init__(self, port: int, queries: list[dict]):
        super().__init__(daemon=True)
        self.port = port
        self.queries = queries
        self.latencies: list[float] = []
        self.responses: list[tuple[dict, dict]] = []  # (query, result)
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            conn = HTTPConnection("127.0.0.1", self.port)
            index = 0
            request = 0
            while index < len(self.queries):
                if request % BATCH_EVERY == BATCH_EVERY - 1:
                    chunk = self.queries[index:index + BATCH_SIZE]
                    body = json.dumps({"queries": chunk})
                else:
                    chunk = self.queries[index:index + 1]
                    body = json.dumps(chunk[0])
                index += len(chunk)
                request += 1
                started = time.perf_counter()
                conn.request(
                    "POST", "/select", body,
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                self.latencies.append(time.perf_counter() - started)
                if response.status != 200:
                    raise RuntimeError(f"HTTP {response.status}: {payload}")
                results = (
                    payload["results"] if "results" in payload else [payload]
                )
                self.responses.extend(zip(chunk, results))
            conn.close()
        except BaseException as error:  # surfaced by the main thread
            self.error = error


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def scrape_metrics(port: int) -> dict:
    conn = HTTPConnection("127.0.0.1", port)
    conn.request("GET", "/metrics")
    text = conn.getresponse().read().decode()
    conn.close()
    wanted = (
        "repro_select_queries_total",
        "repro_query_cache_hits_total",
        "repro_query_cache_misses_total",
        "repro_query_cache_hit_ratio",
        "repro_request_seconds_count",
    )
    out = {}
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name = line.split("{")[0].split(" ")[0]
        if name in wanted:
            out[name] = out.get(name, 0.0) + float(line.rsplit(" ", 1)[1])
    return out


def run_bench(full: bool, clients: int, queries_per_client: int, jobs: int) -> dict:
    print("building artifact...")
    build_start = time.perf_counter()
    spec, artifact = build_bench_artifact(full, jobs)
    build_s = time.perf_counter() - build_start
    table = artifact.entries["bcast"].table

    registry = ArtifactRegistry()
    registry.add(artifact)
    service = SelectionService(registry)

    with ServiceThread(service) as handle:
        print(f"server on port {handle.port}; "
              f"{clients} clients x {queries_per_client} queries...")
        workers = [
            ClientWorker(
                handle.port,
                make_queries(artifact, queries_per_client, seed=worker),
            )
            for worker in range(clients)
        ]
        load_start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        load_s = time.perf_counter() - load_start
        for worker in workers:
            if worker.error is not None:
                raise RuntimeError(f"client failed: {worker.error}")
        metrics = scrape_metrics(handle.port)

    # Bit-identity: every served selection equals the offline table lookup.
    total_queries = 0
    for worker in workers:
        for query, result in worker.responses:
            total_queries += 1
            expected = table.select(query["procs"], query["nbytes"])
            got = (result["algorithm"], result["segment_size"])
            if got != (expected.algorithm, expected.segment_size):
                raise RuntimeError(
                    f"served selection diverged at {query}: "
                    f"{got} != {(expected.algorithm, expected.segment_size)}"
                )

    latencies = sorted(
        latency for worker in workers for latency in worker.latencies
    )
    p50 = percentile(latencies, 0.50)
    p95 = percentile(latencies, 0.95)
    p99 = percentile(latencies, 0.99)

    if total_queries < 1000:
        raise RuntimeError(f"only {total_queries} queries; need >= 1000")
    if p99 >= P99_BUDGET:
        raise RuntimeError(f"p99 {p99 * 1e3:.2f} ms exceeds 50 ms budget")

    return {
        "metadata": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": cpu_count(),
        },
        "workload": {
            "cluster": spec.name,
            "scale": "full" if full else "quick",
            "clients": clients,
            "queries_per_client": queries_per_client,
            "batch_every": BATCH_EVERY,
            "batch_size": BATCH_SIZE,
            "grid": f"{len(table.proc_points)}x{len(table.size_points)}",
        },
        "artifact": {
            "id": artifact.artifact_id,
            "build_s": build_s,
        },
        "requests": len(latencies),
        "queries": total_queries,
        "duration_s": load_s,
        "queries_per_s": total_queries / load_s if load_s else 0.0,
        "latency_ms": {
            "p50": p50 * 1e3,
            "p95": p95 * 1e3,
            "p99": p99 * 1e3,
            "max": latencies[-1] * 1e3,
        },
        "p99_budget_ms": P99_BUDGET * 1e3,
        "selections_bit_identical": True,
        "server_metrics": metrics,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(REPO / "BENCH_service.json"))
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--queries", type=int, default=500, help="queries per client"
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="workers for the artifact build (0 = all cores)",
    )
    parser.add_argument("--full", action="store_true",
                        help="paper-scale artifact (noise-free Gros)")
    args = parser.parse_args(argv)

    run = run_bench(
        args.full, args.clients, args.queries, args.jobs or cpu_count()
    )

    output = Path(args.output)
    if output.exists():
        document = json.loads(output.read_text())
    else:
        document = {"runs": []}
    document["runs"].append(run)
    output.write_text(json.dumps(document, indent=2) + "\n")

    latency = run["latency_ms"]
    print(f"wrote {output}")
    print(
        f"{run['queries']} queries in {run['duration_s']:.2f}s "
        f"({run['queries_per_s']:.0f} q/s) | "
        f"p50 {latency['p50']:.2f} ms, p95 {latency['p95']:.2f} ms, "
        f"p99 {latency['p99']:.2f} ms (budget 50 ms) | bit-identical: "
        f"{run['selections_bit_identical']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
