"""Tests for the simulated MPI point-to-point layer."""

import pytest

from repro.errors import DeadlockError, MpiError
from repro.mpi.communicator import MpiWorld
from repro.sim.engine import Simulator
from repro.sim.network import Fabric, NetworkParams
from repro.sim.trace import Tracer

PARAMS = NetworkParams(
    latency=10e-6,
    byte_time_out=1e-9,
    byte_time_in=1e-9,
    per_message_overhead=1e-6,
    send_overhead=0.5e-6,
    recv_overhead=0.5e-6,
    eager_limit=4096,
    control_latency=8e-6,
    shm_latency=0.5e-6,
    shm_byte_time=0.05e-9,
)


def make_world(procs=4, tracer=None):
    fabric = Fabric(params=PARAMS, num_nodes=procs)
    return MpiWorld(
        Simulator(),
        fabric,
        list(range(procs)),
        tracer=tracer or Tracer(enabled=False),
    )


def run(world, program):
    processes = world.run(program)
    return [p.value for p in processes]


class TestBlockingSendRecv:
    def test_message_delivered(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, 100, tag=5)
                return "sent"
            status = yield from comm.recv(0, tag=5)
            return status

        sent, status = run(world, body)
        assert sent == "sent"
        assert status.source == 0
        assert status.tag == 5
        assert status.nbytes == 100

    def test_eager_recv_time_matches_network_model(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, 1000, tag=0)
            else:
                yield from comm.recv(0, tag=0)
            return comm.now

        _, recv_time = run(world, body)
        expected = (
            PARAMS.send_overhead
            + PARAMS.per_message_overhead
            + 1000 * PARAMS.byte_time_out
            + PARAMS.latency
            + 1000 * PARAMS.byte_time_in
            + PARAMS.recv_overhead
        )
        assert recv_time == pytest.approx(expected)

    def test_send_to_self_rejected(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(0, 10)
            return None

        processes = world.spawn(body)
        world.sim.run()
        with pytest.raises(MpiError, match="self"):
            _ = processes[0].value

    def test_peer_out_of_range_rejected(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(5, 10)
            return None

        processes = world.spawn(body)
        world.sim.run()
        with pytest.raises(MpiError, match="peer rank 5"):
            _ = processes[0].value


class TestEagerProtocol:
    def test_eager_send_completes_before_recv_posted(self):
        """Standard-mode small sends are buffered: local completion."""
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                status = yield from comm.send(1, 100, tag=1)
                send_done = comm.now
                del status
                return send_done
            # Receiver posts very late.
            yield comm.sim.timeout(1.0)
            yield from comm.recv(0, tag=1)
            return comm.now

        send_done, recv_done = run(world, body)
        assert send_done < 1e-3  # local completion, way before the recv
        assert recv_done >= 1.0


class TestRendezvousProtocol:
    def test_large_send_blocks_until_receiver_arrives(self):
        world = make_world(2)
        big = PARAMS.eager_limit + 1

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, big, tag=1)
                return comm.now
            yield comm.sim.timeout(0.5)
            yield from comm.recv(0, tag=1)
            return comm.now

        send_done, recv_done = run(world, body)
        assert send_done > 0.5  # held back by the handshake
        assert recv_done >= send_done

    def test_rendezvous_includes_handshake_latency(self):
        world = make_world(2)
        big = PARAMS.eager_limit + 1

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, big, tag=1)
            else:
                yield from comm.recv(0, tag=1)
            return comm.now

        _, recv_done = run(world, body)
        minimum = (
            PARAMS.send_overhead
            + 2 * PARAMS.control_latency  # RTS + CTS
            + PARAMS.per_message_overhead
            + big * (PARAMS.byte_time_out + PARAMS.byte_time_in)
            + PARAMS.latency
            + PARAMS.recv_overhead
        )
        assert recv_done == pytest.approx(minimum)


class TestNonBlocking:
    def test_isend_returns_quickly_and_waitall_completes(self):
        world = make_world(4)

        def body(comm):
            if comm.rank == 0:
                requests = []
                for peer in (1, 2, 3):
                    request = yield from comm.isend(peer, 1000, tag=2)
                    requests.append(request)
                posted_at = comm.now
                yield from comm.waitall(requests)
                return posted_at, comm.now
            yield from comm.recv(0, tag=2)
            return None

        values = run(world, body)
        posted_at, completed_at = values[0]
        # Posting costs only the per-call overheads.
        assert posted_at == pytest.approx(3 * PARAMS.send_overhead)
        assert completed_at > posted_at

    def test_waitany_returns_first_completion(self):
        world = make_world(3)

        def body(comm):
            if comm.rank == 0:
                slow = yield from comm.irecv(1, tag=3)
                fast = yield from comm.irecv(2, tag=3)
                index, status = yield from comm.waitany([slow, fast])
                return index, status.source
            delay = 0.5 if comm.rank == 1 else 0.0
            yield comm.sim.timeout(delay)
            yield from comm.send(0, 10, tag=3)
            return None

        values = run(world, body)
        index, source = values[0]
        assert (index, source) == (1, 2)

    def test_sendrecv_exchanges_without_deadlock(self):
        world = make_world(2)

        def body(comm):
            peer = 1 - comm.rank
            status = yield from comm.sendrecv(peer, 500, peer, sendtag=4, recvtag=4)
            return status.source

        sources = run(world, body)
        assert sources == [1, 0]


class TestOrderingSemantics:
    def test_non_overtaking_same_tag(self):
        """Two same-tag messages arrive in send order."""
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, 100, tag=7)  # first
                yield from comm.send(1, 200, tag=7)  # second
                return None
            first = yield from comm.recv(0, tag=7)
            second = yield from comm.recv(0, tag=7)
            return first.nbytes, second.nbytes

        assert run(world, body)[1] == (100, 200)

    def test_tag_selectivity(self):
        """A receive with a specific tag skips non-matching arrivals."""
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, 111, tag=1)
                yield from comm.send(1, 222, tag=2)
                return None
            wanted = yield from comm.recv(0, tag=2)
            other = yield from comm.recv(0, tag=1)
            return wanted.nbytes, other.nbytes

        assert run(world, body)[1] == (222, 111)

    def test_any_source_receives_from_either(self):
        from repro.mpi import ANY_SOURCE

        world = make_world(3)

        def body(comm):
            if comm.rank == 0:
                a = yield from comm.recv(ANY_SOURCE, tag=9)
                b = yield from comm.recv(ANY_SOURCE, tag=9)
                return sorted([a.source, b.source])
            yield from comm.send(0, 10, tag=9)
            return None

        assert run(world, body)[0] == [1, 2]


class TestDeadlocks:
    def test_unmatched_recv_detected(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 1:
                yield from comm.recv(0, tag=1)  # nobody sends
            return None

        world.spawn(body)
        with pytest.raises(DeadlockError, match="rank-1"):
            world.sim.run()

    def test_mutual_rendezvous_sends_deadlock(self):
        """Two blocking rendezvous sends facing each other hang, as in MPI."""
        world = make_world(2)
        big = PARAMS.eager_limit + 1

        def body(comm):
            peer = 1 - comm.rank
            yield from comm.send(peer, big, tag=1)
            yield from comm.recv(peer, tag=1)
            return None

        world.spawn(body)
        with pytest.raises(DeadlockError):
            world.sim.run()


class TestCompute:
    def test_compute_advances_local_clock_only(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.compute(2.5)
            return comm.now

        times = run(world, body)
        assert times[0] == pytest.approx(2.5)
        assert times[1] == 0.0
