"""Port of Open MPI 3.1's fixed broadcast decision function.

This reproduces ``ompi_coll_tuned_bcast_intra_dec_fixed`` from
``ompi/mca/coll/tuned/coll_tuned_decision_fixed.c``: the hard-coded rule —
derived by Open MPI's developers from benchmarks on a particular platform
("MX results for messages up to 36 MB and communicator sizes up to 64
nodes") — that picks the broadcast algorithm and segment size from the
message size and communicator size.  It is the blue curve of the paper's
Fig. 5 and the "Open MPI" column of Table 3.

Name mapping between Open MPI and our catalogue:

=====================  ==================
Open MPI               :mod:`repro` name
=====================  ==================
binomial               ``binomial``
split binary tree      ``split_binary``
pipeline               ``chain`` (single chain)
chain (4 chains)       ``k_chain``
=====================  ==================
"""

from __future__ import annotations

from repro.errors import SelectionError
from repro.selection.oracle import Selection
from repro.units import KiB

#: Thresholds and linear boundaries from coll_tuned_decision_fixed.c.
SMALL_MESSAGE_SIZE = 2048
INTERMEDIATE_MESSAGE_SIZE = 370728
A_P16 = 3.2118e-6  # [1/byte]
B_P16 = 8.7936
A_P64 = 2.3679e-6  # [1/byte]
B_P64 = 1.1787
A_P128 = 1.6134e-6  # [1/byte]
B_P128 = 2.1102


def ompi_bcast_decision(communicator_size: int, message_size: int) -> Selection:
    """The Open MPI 3.1 fixed decision for ``MPI_Bcast``.

    Follows the original control flow branch by branch; returns the
    selected algorithm and segment size.
    """
    if communicator_size < 1:
        raise SelectionError(f"invalid communicator size {communicator_size}")
    if message_size < 0:
        raise SelectionError(f"negative message size {message_size}")

    if message_size < SMALL_MESSAGE_SIZE:
        # Binomial without segmentation.
        return Selection("binomial", 0)
    if message_size < INTERMEDIATE_MESSAGE_SIZE:
        # SplittedBinary with 1KB segments.
        return Selection("split_binary", 1 * KiB)
    # Large message sizes.
    if communicator_size < (A_P128 * message_size + B_P128):
        # Pipeline with 128KB segments.
        return Selection("chain", 128 * KiB)
    if communicator_size < 13:
        # Split Binary with 8KB segments.
        return Selection("split_binary", 8 * KiB)
    if communicator_size < (A_P64 * message_size + B_P64):
        # Pipeline with 64KB segments.
        return Selection("chain", 64 * KiB)
    if communicator_size < (A_P16 * message_size + B_P16):
        # Pipeline with 16KB segments.
        return Selection("chain", 16 * KiB)
    # Pipeline with 8KB segments.
    return Selection("chain", 8 * KiB)


#: Linear boundaries of the reduce decision (coll_tuned_decision_fixed.c).
REDUCE_A1 = 0.6016 / 1024.0  # [1/byte]
REDUCE_B1 = 1.3496
REDUCE_A2 = 0.0410 / 1024.0
REDUCE_B2 = 9.7128
REDUCE_A3 = 0.0422 / 1024.0
REDUCE_B3 = 1.1614
REDUCE_A4 = 0.0033 / 1024.0
REDUCE_B4 = 1.6761


def ompi_reduce_decision(communicator_size: int, message_size: int) -> Selection:
    """The Open MPI 3.1 fixed decision for ``MPI_Reduce``.

    Port of ``ompi_coll_tuned_reduce_intra_dec_fixed``: four linear
    boundaries in the (message size, communicator size) plane select
    between the linear, binomial, binary and pipeline (chain) reductions
    with hard-coded segment sizes.
    """
    if communicator_size < 1:
        raise SelectionError(f"invalid communicator size {communicator_size}")
    if message_size < 0:
        raise SelectionError(f"negative message size {message_size}")

    if communicator_size < REDUCE_A1 * message_size + REDUCE_B1:
        # Linear, no segmentation.
        return Selection("linear", 0, operation="reduce")
    if communicator_size < REDUCE_A2 * message_size + REDUCE_B2:
        # Binomial with 1KB segments.
        return Selection("binomial", 1 * KiB, operation="reduce")
    if communicator_size < REDUCE_A3 * message_size + REDUCE_B3:
        # Binary with 32KB segments.
        return Selection("binary", 32 * KiB, operation="reduce")
    if communicator_size < REDUCE_A4 * message_size + REDUCE_B4:
        # Pipeline with 32KB segments.
        return Selection("chain", 32 * KiB, operation="reduce")
    # Pipeline with 64KB segments.
    return Selection("chain", 64 * KiB, operation="reduce")


class OmpiFixedSelector:
    """Selector interface over the fixed decision functions.

    ``operation`` picks the decision function: ``"bcast"`` (the paper's
    baseline) or ``"reduce"`` (the future-work extension).
    """

    name = "ompi_fixed"

    def __init__(self, operation: str = "bcast"):
        if operation not in ("bcast", "reduce"):
            raise SelectionError(
                f"no fixed decision function for operation {operation!r}"
            )
        self.operation = operation

    def select(self, procs: int, nbytes: int) -> Selection:
        if self.operation == "reduce":
            return ompi_reduce_decision(procs, nbytes)
        return ompi_bcast_decision(procs, nbytes)
