"""Cluster descriptions and world construction."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.errors import SimulationError
from repro.fabric.spec import FabricSpec
from repro.faults.fabric import FaultyFabric
from repro.faults.noise import compose_noise
from repro.faults.plan import FaultPlan
from repro.mpi.communicator import MpiWorld
from repro.sim.engine import Simulator
from repro.sim.network import Fabric, NetworkParams
from repro.sim.noise import LognormalNoise, NoNoise
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class ClusterSpec:
    """A simulated cluster platform.

    Combines the node inventory with the fabric parameters and a default
    noise level.  ``rank_to_node`` uses block ("by slot") placement, the
    Open MPI default: ranks fill a node's slots before moving to the next
    node, so e.g. Grisou's two ranks per node make ranks ``2k`` and
    ``2k + 1`` node-local.
    """

    name: str
    nodes: int
    procs_per_node: int
    network: NetworkParams
    #: Lognormal sigma of run-to-run cost jitter (0 disables noise).
    noise_sigma: float = 0.0
    #: NIC ports per node; co-located ranks round-robin over ports, so a
    #: node with as many ports as ranks has no injection contention.
    nics_per_node: int = 1
    #: Per-node NIC slowdown factors (straggler nodes), e.g. ``{60: 6.0}``.
    slow_nodes: dict = field(default_factory=dict)
    #: Optional fault plan (:mod:`repro.faults`); ``None`` — and an empty,
    #: inert plan — leave every code path and fingerprint untouched.
    faults: FaultPlan | None = None
    #: Optional multi-level fabric (:mod:`repro.fabric`); ``None`` — and
    #: the explicit flat fabric — leave every code path and fingerprint
    #: untouched, exactly mirroring the ``faults`` contract.
    fabric: FabricSpec | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise SimulationError(f"{self.name}: need at least one node")
        if self.procs_per_node < 1:
            raise SimulationError(f"{self.name}: need at least one proc per node")
        if self.nics_per_node < 1:
            raise SimulationError(f"{self.name}: need at least one NIC port")

    @property
    def max_procs(self) -> int:
        """Largest process count this cluster can host."""
        return self.nodes * self.procs_per_node

    def rank_to_node(self, procs: int, mapping: str = "block") -> list[int]:
        """Map ``procs`` ranks onto nodes.

        ``"block"`` (by-slot, the Open MPI default) fills each node's slots
        before moving on; ``"spread"`` (by-node, round-robin) puts
        consecutive ranks on distinct nodes — used by the small-P parameter
        estimation experiments so every link under test is a network link.
        """
        if not 1 <= procs <= self.max_procs:
            raise SimulationError(
                f"{self.name}: {procs} procs outside 1..{self.max_procs}"
            )
        if mapping == "block":
            return [rank // self.procs_per_node for rank in range(procs)]
        if mapping == "spread":
            return [rank % self.nodes for rank in range(procs)]
        raise SimulationError(f"unknown mapping {mapping!r}; use 'block' or 'spread'")

    def make_world(
        self,
        procs: int,
        seed: int = 0,
        noise_sigma: float | None = None,
        tracer: Tracer = NULL_TRACER,
        mapping: str = "block",
    ) -> MpiWorld:
        """A fresh simulated world with ``procs`` ranks on this cluster.

        Each call builds an independent simulator; pass distinct ``seed``
        values to obtain independent noise realisations (repetitions of a
        measurement).
        """
        sigma = self.noise_sigma if noise_sigma is None else noise_sigma
        placement = self.rank_to_node(procs, mapping=mapping)
        slots_seen: dict[int, int] = {}
        ports = []
        for node in placement:
            slot = slots_seen.get(node, 0)
            slots_seen[node] = slot + 1
            ports.append(slot % self.nics_per_node)
        num_nodes = max(placement) + 1
        degradation = {
            node: factor
            for node, factor in self.slow_nodes.items()
            if node <= max(placement)
        }
        topology = (
            self.fabric
            if self.fabric is not None and not self.fabric.is_flat()
            else None
        )
        plan = self.faults
        if plan is not None and plan.enabled():
            fabric: Fabric = FaultyFabric(
                params=self.network,
                num_nodes=num_nodes,
                noise=compose_noise(sigma, plan.noise, seed),
                ports_per_node=self.nics_per_node,
                degradation=degradation,
                topology=topology,
                plan=plan,
                seed=seed,
            )
            slow_cpu = {
                s.node: s.compute_factor
                for s in plan.stragglers
                if s.node < num_nodes and s.compute_factor != 1.0
            }
            compute_factor = (
                [slow_cpu.get(node, 1.0) for node in placement]
                if slow_cpu
                else None
            )
        else:
            noise = (
                LognormalNoise(sigma=sigma, seed=seed) if sigma > 0 else NoNoise()
            )
            fabric = Fabric(
                params=self.network,
                num_nodes=num_nodes,
                noise=noise,
                ports_per_node=self.nics_per_node,
                degradation=degradation,
                topology=topology,
            )
            compute_factor = None
        node_to_rack = (
            [topology.rack_of(node) for node in range(num_nodes)]
            if topology is not None
            else None
        )
        return MpiWorld(
            Simulator(),
            fabric,
            placement,
            tracer=tracer,
            rank_to_port=ports,
            compute_factor=compute_factor,
            node_to_rack=node_to_rack,
        )

    def fingerprint(self) -> str:
        """Stable content hash over every fidelity knob of this platform.

        Two specs with equal fields produce equal fingerprints in any
        process or session; changing *any* field — a network constant, the
        noise level, the NIC count, a straggler entry — changes it.  This is
        the cache-key foundation of :mod:`repro.exec`: a persisted
        simulation result is only reusable if the platform that produced it
        is byte-for-byte the platform being asked about.

        The hash covers field *values*, not the preset name alone, so e.g.
        ``GRISOU.with_noise(0.0)`` and ``GRISOU`` never collide.
        """
        net = self.network
        payload = {
            "name": self.name,
            "nodes": self.nodes,
            "procs_per_node": self.procs_per_node,
            "noise_sigma": self.noise_sigma,
            "nics_per_node": self.nics_per_node,
            "slow_nodes": sorted(
                (int(node), float(factor))
                for node, factor in self.slow_nodes.items()
            ),
            "network": {
                "latency": net.latency,
                "byte_time_out": net.byte_time_out,
                "byte_time_in": net.byte_time_in,
                "per_message_overhead": net.per_message_overhead,
                "send_overhead": net.send_overhead,
                "recv_overhead": net.recv_overhead,
                "eager_limit": net.eager_limit,
                "control_latency": net.control_latency,
                "shm_latency": net.shm_latency,
                "shm_byte_time": net.shm_byte_time,
            },
        }
        if self.faults is not None and self.faults.enabled():
            # Key added only for an *enabled* plan: specs without faults
            # (or with an inert empty plan) keep their pre-fault
            # fingerprints, so existing cache entries and artifact hashes
            # survive this feature bit-for-bit.
            payload["faults"] = self.faults.payload()
        if self.fabric is not None and not self.fabric.is_flat():
            # Same contract as faults: only a *non-flat* fabric folds in,
            # so flat configurations (explicit or implicit) keep their
            # pre-fabric fingerprints and warm caches bit-for-bit.
            payload["fabric"] = self.fabric.payload()
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def with_noise(self, sigma: float) -> "ClusterSpec":
        """A copy of this spec with a different default noise level."""
        return replace(self, noise_sigma=sigma)

    def with_slow_nodes(self, slow_nodes: dict) -> "ClusterSpec":
        """A copy of this spec with straggler nodes injected.

        ``slow_nodes`` maps node ids to NIC slowdown factors (>= 1).  Use to
        study algorithm sensitivity to platform pathologies — long pipelines
        route every byte through every node, so one straggler collapses
        them, while trees only suffer if the straggler lands on an interior
        position.
        """
        return replace(self, slow_nodes=dict(slow_nodes))

    def with_faults(self, faults: FaultPlan | None) -> "ClusterSpec":
        """A copy of this spec carrying a fault plan (``None`` clears it).

        The plan flows through :meth:`make_world` (fault-aware fabric,
        straggler CPU factors) and :meth:`fingerprint` (faulty results get
        their own cache keys), so every downstream consumer — measurement,
        the result cache, calibration, benchmarks — sees it automatically.
        """
        return replace(self, faults=faults)

    def with_fabric(self, fabric: FabricSpec | None) -> "ClusterSpec":
        """A copy of this spec on a multi-level fabric (``None`` clears it).

        A non-flat fabric flows through :meth:`make_world` (topology-aware
        routing, rack map for hierarchical algorithms) and
        :meth:`fingerprint` (fabric results get their own cache keys); the
        flat fabric and ``None`` are indistinguishable everywhere.
        """
        return replace(self, fabric=fabric)

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        net = self.network
        line = (
            f"{self.name}: {self.nodes} nodes x {self.procs_per_node} procs, "
            f"latency {net.latency * 1e6:.1f} us, "
            f"{8e-9 / net.byte_time_out:.0f} Gbit/s, "
            f"eager limit {net.eager_limit} B"
        )
        if self.fabric is not None and not self.fabric.is_flat():
            line += f", fabric {self.fabric.name}"
        return line
