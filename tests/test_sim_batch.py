"""Tests for the batched grid simulator (:mod:`repro.sim.batch`).

The load-bearing properties:

* the columnar fast path is **bit-for-bit identical** to the event-loop
  engine over the full calibration grid of every collective — broadcast,
  reduce, gather and barrier pipelines alike;
* ineligible cells (noise, fault plans, unsupported algorithms) fall back
  to :func:`repro.exec.execute_job` cleanly, still returning identical
  results;
* the runner's batched prefetch is equivalent to the serial path and a
  warm persistent cache replays a batch with *zero* new simulations.
"""

from __future__ import annotations

import pytest

from repro.clusters import GRISOU, MINICLUSTER
from repro.collectives import BARRIER_ALGORITHMS, GATHER_ALGORITHMS
from repro.collectives.bcast import PAPER_BCAST_ALGORITHMS
from repro.collectives.reduce import REDUCE_ALGORITHMS
from repro.estimation.alphabeta import alphabeta_prefetch_jobs
from repro.estimation.barrier_calibration import barrier_prefetch_jobs
from repro.estimation.gather_calibration import gather_prefetch_jobs
from repro.estimation.reduce_calibration import reduce_alphabeta_prefetch_jobs
from repro.exec import ParallelRunner, ResultCache, SimJob, execute_job
from repro.faults.plan import FaultPlan, StragglerFault
from repro.sim.batch import BatchSimulator, dedupe_key, noise_free
from repro.units import KiB, MiB

SIZES = (1 * KiB, 64 * KiB, 1 * MiB)

#: A quiet two-port SMP cluster: exercises shared memory, the two NICs per
#: node and the spread/block distinction that MINICLUSTER (1 ppn) cannot.
GRISOU_QUIET = GRISOU.with_noise(0.0)


def calibration_grid(spec, procs):
    """Every job the four calibration pipelines would prefetch."""
    jobs: list[SimJob] = []
    for algorithm in PAPER_BCAST_ALGORITHMS:
        jobs += alphabeta_prefetch_jobs(
            spec, algorithm, procs=procs, sizes=SIZES
        )
    for algorithm in REDUCE_ALGORITHMS:
        jobs += reduce_alphabeta_prefetch_jobs(
            spec, algorithm, procs=procs, sizes=SIZES
        )
    for algorithm in GATHER_ALGORITHMS:
        jobs += gather_prefetch_jobs(spec, algorithm, procs=procs, sizes=SIZES)
    for algorithm in BARRIER_ALGORITHMS:
        jobs += barrier_prefetch_jobs(
            spec, algorithm, proc_counts=(4, procs)
        )
    return jobs


class TestColumnarParity:
    @pytest.mark.parametrize(
        "spec,procs",
        [(MINICLUSTER, 12), (GRISOU_QUIET, 24)],
        ids=["minicluster", "grisou-quiet"],
    )
    def test_full_calibration_grid_bit_identical(self, spec, procs):
        jobs = calibration_grid(spec, procs)
        sim = BatchSimulator()
        got = sim.run(jobs)
        want = [execute_job(job) for job in jobs]
        assert got == want  # bit-for-bit, not approx
        # The dominant broadcast/reduce grids must actually take the
        # columnar path — a silent wholesale fallback would pass parity
        # while destroying the speedup.
        assert sim.stats.columnar > sim.stats.event_loop
        assert sim.stats.cells == len(jobs)

    def test_bcast_root_and_policy_variants(self):
        jobs = [
            SimJob(
                spec=MINICLUSTER,
                kind="bcast",
                procs=10,
                algorithm=algorithm,
                nbytes=32 * KiB,
                segment_size=8 * KiB,
                root=root,
                policy=policy,
                mapping=mapping,
            )
            for algorithm in ("linear", "chain", "binary", "binomial")
            for root in (0, 3)
            for policy in ("root", "global")
            for mapping in ("block", "spread")
        ]
        sim = BatchSimulator()
        assert sim.run(jobs) == [execute_job(job) for job in jobs]
        assert sim.stats.columnar == len(jobs)

    def test_noise_free_cells_are_seed_deduped(self):
        jobs = [
            SimJob(spec=MINICLUSTER, kind="bcast", procs=8,
                   algorithm="binomial", nbytes=8 * KiB, seed=seed)
            for seed in (0, 1, 2, 3)
        ]
        assert len({dedupe_key(job) for job in jobs}) == 1
        sim = BatchSimulator()
        results = sim.run(jobs)
        assert len(set(results)) == 1
        assert sim.stats.deduped == 3
        assert sim.stats.unique_cells == 1


class TestFallback:
    def test_noisy_spec_falls_back_and_matches(self):
        spec = MINICLUSTER.with_noise(0.2)
        jobs = [
            SimJob(spec=spec, kind="bcast", procs=8, algorithm="binomial",
                   nbytes=8 * KiB, seed=seed)
            for seed in (0, 1)
        ]
        assert not noise_free(spec)
        sim = BatchSimulator()
        assert sim.run(jobs) == [execute_job(job) for job in jobs]
        assert sim.stats.columnar == 0
        assert sim.stats.event_loop == 2
        assert sim.stats.deduped == 0  # noisy seeds are distinct results

    def test_fault_plan_falls_back_and_matches(self):
        spec = MINICLUSTER.with_faults(
            FaultPlan(stragglers=(StragglerFault(node=2, inject_factor=2.0),))
        )
        assert not noise_free(spec)
        jobs = [
            SimJob(spec=spec, kind="reduce_then_scatter", procs=8,
                   algorithm="binomial", nbytes=16 * KiB,
                   segment_size=8 * KiB, gather_bytes=1 * KiB)
        ]
        sim = BatchSimulator()
        assert sim.run(jobs) == [execute_job(job) for job in jobs]
        assert sim.stats.event_loop == 1

    def test_unsupported_algorithm_falls_back_and_matches(self):
        jobs = [
            SimJob(spec=MINICLUSTER, kind="bcast", procs=12,
                   algorithm="split_binary", nbytes=64 * KiB,
                   segment_size=8 * KiB)
        ]
        sim = BatchSimulator()
        assert sim.run(jobs) == [execute_job(job) for job in jobs]
        assert sim.stats.event_loop == 1


class TestRunnerIntegration:
    def test_batched_prefetch_matches_serial(self):
        jobs = calibration_grid(MINICLUSTER, 10)[:40]
        serial = ParallelRunner(jobs=1, batch=False)
        batched = ParallelRunner(jobs=1, batch=True)
        serial.prefetch(jobs)
        batched.prefetch(jobs)
        assert batched.run(jobs) == serial.run(jobs)
        assert batched.stats.batched_cells == len(jobs)
        assert batched.stats.deduped_cells > 0
        assert batched.stats.simulations < serial.stats.simulations

    def test_warm_cache_replays_batch_with_zero_simulations(self, tmp_path):
        jobs = calibration_grid(MINICLUSTER, 8)[:24]
        cold = ParallelRunner(jobs=1, cache=ResultCache(tmp_path), batch=True)
        cold.prefetch(jobs)
        first = cold.run(jobs)
        assert cold.stats.simulations > 0

        warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path), batch=True)
        warm.prefetch(jobs)
        assert warm.run(jobs) == first
        assert warm.stats.simulations == 0
