"""Ablation A2: in-context per-algorithm α/β vs classical ping-pong α/β.

The paper's contribution 2 is estimating the Hockney parameters separately
per algorithm from experiments containing the algorithm itself.  This
ablation keeps the derived model equations fixed and swaps only the
parameter source: per-algorithm collective experiments (§4.2) vs one
ping-pong fit shared by all algorithms (the classical method the related
work used, §2.2).
"""

import pytest

from repro.bench.runner import selection_comparison
from repro.estimation.workflow import calibrate_platform

from conftest import MAX_REPS, PAPER_SIZES, TABLE3_PROCS


@pytest.fixture(scope="module")
def p2p_calibration(grisou):
    return calibrate_platform(
        grisou,
        procs=40,
        sizes=PAPER_SIZES,
        max_reps=MAX_REPS,
        estimation="p2p",
    )


def test_ablation_estimation_method(
    benchmark, grisou, grisou_calibration, p2p_calibration, grisou_oracle
):
    procs = TABLE3_PROCS["grisou"]

    def compare_estimations():
        rows = {}
        for label, calibration in (
            ("in-context", grisou_calibration),
            ("ping-pong", p2p_calibration),
        ):
            rows[label] = selection_comparison(
                grisou,
                calibration.platform,
                procs,
                PAPER_SIZES,
                oracle=grisou_oracle,
            )
        return rows

    rows = benchmark.pedantic(compare_estimations, rounds=1, iterations=1)

    print()
    print(f"Ablation A2 (grisou, P={procs}): selection degradation vs best [%]")
    print(f"{'m':>10}  {'in-context':>11}  {'ping-pong':>10}")
    for ctx_row, p2p_row in zip(rows["in-context"], rows["ping-pong"]):
        print(
            f"{ctx_row.nbytes:>10}  {ctx_row.model_degradation:>11.1f}"
            f"  {p2p_row.model_degradation:>10.1f}"
        )
    context_total = sum(r.model_degradation for r in rows["in-context"])
    p2p_total = sum(r.model_degradation for r in rows["ping-pong"])
    print(f"total: in-context={context_total:.1f}% ping-pong={p2p_total:.1f}%")

    # In-context estimation must not lose to the classical method overall,
    # and must stay near-optimal on its own.
    assert context_total <= p2p_total + 1.0
    assert max(r.model_degradation for r in rows["in-context"]) < 20.0


def test_p2p_parameters_identical_across_algorithms(p2p_calibration):
    """Sanity: the ablation baseline really shares one parameter set."""
    params = {
        (p.alpha, p.beta) for p in p2p_calibration.platform.parameters.values()
    }
    assert len(params) == 1
