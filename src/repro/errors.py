"""Exception hierarchy for the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still blocked.

    This is the simulated analogue of an MPI program hanging: some rank is
    waiting on a receive that is never matched by a send (or vice versa).
    The ``pending`` attribute lists the stuck process names.
    """

    def __init__(self, pending: list[str]):
        self.pending = list(pending)
        names = ", ".join(self.pending) or "<unnamed>"
        super().__init__(f"simulation deadlock: processes still blocked: {names}")


class MpiError(ReproError):
    """Raised for invalid use of the simulated MPI layer."""


class TopologyError(ReproError):
    """Raised when a virtual topology cannot be built or is inconsistent."""


class EstimationError(ReproError):
    """Raised when a parameter-estimation procedure cannot produce a result."""


class SelectionError(ReproError):
    """Raised when algorithm selection is asked for an unknown operation."""


class CacheError(ReproError):
    """Raised when the persistent result cache cannot be read or written."""


class ArtifactError(ReproError):
    """Raised when a selection artifact is invalid, corrupt or mismatched."""


class FaultError(ReproError):
    """Raised when a fault plan is malformed or cannot be applied."""


class ServiceError(ReproError):
    """Raised for invalid requests to or misuse of the selection service."""


class TuningError(ReproError):
    """Raised for misuse of the self-tuning loop (guidelines, drift)."""


class GuidelineViolationError(TuningError):
    """Raised when strict guideline verification refuses an artifact.

    The ``report`` attribute carries the full
    :class:`repro.tuning.guidelines.GuidelineReport`.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class PortInUseError(ServiceError):
    """Raised when the selection server's listen port is already bound."""
