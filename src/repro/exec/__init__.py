"""Execution subsystem: job model, persistent result cache, parallel runner.

Three layers (see docs/PERFORMANCE.md for the architecture):

* :class:`SimJob` / :func:`execute_job` — one deterministic simulation,
  canonically fingerprinted (:mod:`repro.exec.job`);
* :class:`ResultCache` — content-addressed persistent store with
  code-salt invalidation (:mod:`repro.exec.cache`);
* :class:`ParallelRunner` — multi-core batch execution with deterministic
  ordering, plus the process-wide default runner the CLI flags configure
  (:mod:`repro.exec.runner`).
"""

from repro.exec.cache import (
    CACHE_SCHEMA,
    CacheStats,
    ResultCache,
    code_salt,
    default_cache_dir,
)
from repro.exec.job import (
    JOB_KINDS,
    BatchJob,
    SimJob,
    execute_batch_job,
    execute_job,
)
from repro.exec.runner import (
    ExecStats,
    ParallelRunner,
    configure,
    cpu_count,
    default_runner,
    reset_default_runner,
)

__all__ = [
    "BatchJob",
    "CACHE_SCHEMA",
    "CacheStats",
    "ExecStats",
    "JOB_KINDS",
    "ParallelRunner",
    "ResultCache",
    "SimJob",
    "code_salt",
    "configure",
    "cpu_count",
    "default_cache_dir",
    "default_runner",
    "execute_batch_job",
    "execute_job",
    "reset_default_runner",
]
