"""Tests for the classical point-to-point estimation (ablation baseline)."""

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import EstimationError
from repro.estimation.p2p import estimate_hockney_p2p
from repro.measure import time_p2p_roundtrip
from repro.units import KiB


@pytest.fixture(scope="module")
def p2p_estimate():
    return estimate_hockney_p2p(
        MINICLUSTER, sizes=[1 * KiB, 8 * KiB, 64 * KiB, 512 * KiB]
    )


class TestP2pEstimation:
    def test_beta_matches_link_byte_time(self, p2p_estimate):
        """The round-trip slope recovers the physical per-byte cost."""
        physical = (
            MINICLUSTER.network.byte_time_out + MINICLUSTER.network.byte_time_in
        )
        assert p2p_estimate.beta == pytest.approx(physical, rel=0.15)

    def test_alpha_close_to_physical_latency(self, p2p_estimate):
        net = MINICLUSTER.network
        expected = (
            net.latency
            + net.send_overhead
            + net.recv_overhead
            + net.per_message_overhead
        )
        assert p2p_estimate.alpha == pytest.approx(expected, rel=0.5)

    def test_prediction_matches_measured_roundtrip_within_regime(self):
        """Within one protocol regime (all rendezvous here) the ping-pong
        fit interpolates almost exactly; across the eager/rendezvous
        threshold a single Hockney line cannot capture the jump — one of
        the structural reasons the paper abandons p2p-derived parameters."""
        estimate = estimate_hockney_p2p(
            MINICLUSTER, sizes=[64 * KiB, 128 * KiB, 512 * KiB, 1024 * KiB]
        )
        nbytes = 256 * KiB  # rendezvous, like every fitted size
        predicted = estimate.params.p2p_time(nbytes)
        measured = time_p2p_roundtrip(MINICLUSTER, nbytes)
        assert predicted == pytest.approx(measured, rel=0.05)

    def test_single_line_misses_protocol_switch(self, p2p_estimate):
        """The mixed-regime fit mispredicts just above the eager limit."""
        nbytes = 32 * KiB  # first rendezvous size on the test cluster
        predicted = p2p_estimate.params.p2p_time(nbytes)
        measured = time_p2p_roundtrip(MINICLUSTER, nbytes)
        assert abs(predicted - measured) / measured > 0.10

    def test_diagnostics_recorded(self, p2p_estimate):
        assert len(p2p_estimate.sizes) == len(p2p_estimate.stats) == 4
        assert all(s.mean > 0 for s in p2p_estimate.stats)

    def test_needs_two_sizes(self):
        with pytest.raises(EstimationError):
            estimate_hockney_p2p(MINICLUSTER, sizes=[8 * KiB])


class TestRoundtripMeasurement:
    def test_halves_the_round_trip(self):
        one_way = time_p2p_roundtrip(MINICLUSTER, 8 * KiB)
        assert one_way > 0

    def test_monotone_in_size(self):
        times = [
            time_p2p_roundtrip(MINICLUSTER, nbytes)
            for nbytes in (1 * KiB, 32 * KiB, 512 * KiB)
        ]
        assert times == sorted(times)

    def test_same_rank_pair_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            time_p2p_roundtrip(MINICLUSTER, 1024, ranks=(2, 2))
