"""Multi-collective service smoke: build, verify, serve, cross-check.

The end-to-end drill for the per-collective calibration registry: build
one artifact carrying the full collective suite (default all eight —
bcast, reduce, gather, barrier, allreduce, allgather, alltoall and
scatter — on the MINICLUSTER small grid), run the packaged
verification (schema, content hash, codegen/table bit-identity), start
the HTTP server over it, then query every operation through ``POST
/select`` at on-grid, off-grid and degenerate points and assert each
served answer is bit-identical to the offline ``DecisionTable`` lookup.

Exits non-zero on the first divergence.  Usage::

    PYTHONPATH=src python benchmarks/run_service_smoke.py
    PYTHONPATH=src python benchmarks/run_service_smoke.py \
        --collectives bcast,reduce,barrier --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from http.client import HTTPConnection
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.clusters import MINICLUSTER  # noqa: E402
from repro.exec import ParallelRunner, cpu_count  # noqa: E402
from repro.service import (  # noqa: E402
    ArtifactRegistry,
    SelectionService,
    ServiceThread,
    build_artifact,
)
from repro.units import KiB, MiB, log_spaced_sizes  # noqa: E402

GRID_PROCS = tuple(range(2, 17, 2))
GRID_SIZES = tuple(log_spaced_sizes(8 * KiB, 1 * MiB, 6))

#: Query sweep per operation: on-grid, off-grid and degenerate corners.
QUERY_POINTS = (
    (2, 8 * KiB),
    (8, 64 * KiB),
    (16, 1 * MiB),
    (1, 0),
    (3, 100),
    (7, 300 * KiB),
    (500, 16 * MiB),
)


def post_select(port: int, operation: str, procs: int, nbytes: int):
    conn = HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(
            "POST",
            "/select",
            json.dumps(
                {
                    "cluster": "minicluster",
                    "operation": operation,
                    "procs": procs,
                    "nbytes": nbytes,
                }
            ),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--collectives",
        default="bcast,reduce,gather,barrier,"
                "allreduce,allgather,alltoall,scatter",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="workers for the artifact build (0 = all cores)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    collectives = [c.strip() for c in args.collectives.split(",") if c.strip()]

    print(f"building {'+'.join(collectives)} artifact on minicluster...")
    started = time.perf_counter()
    runner = ParallelRunner(jobs=args.jobs or cpu_count())
    try:
        artifact = build_artifact(
            MINICLUSTER,
            collectives=collectives,
            proc_points=GRID_PROCS,
            size_points=GRID_SIZES,
            procs=6,
            gamma_max_procs=4,
            sizes=(8 * KiB, 64 * KiB, 512 * KiB),
            max_reps=3,
            seed=args.seed,
            runner=runner,
        )
    finally:
        runner.close()
    print(f"  built {artifact.artifact_id} in "
          f"{time.perf_counter() - started:.1f}s")

    artifact.verify()
    print("  verify: schema, hash and codegen/table agreement OK")

    registry = ArtifactRegistry()
    registry.add(artifact)
    queries = 0
    with ServiceThread(SelectionService(registry)) as handle:
        print(f"server on port {handle.port}; querying every operation...")
        for operation in collectives:
            table = artifact.entries[operation].table
            for procs, nbytes in QUERY_POINTS:
                status, data = post_select(
                    handle.port, operation, procs, nbytes
                )
                if status != 200:
                    print(f"FAIL: HTTP {status} for {operation} "
                          f"P={procs} m={nbytes}: {data}")
                    return 1
                expected = table.select(procs, nbytes)
                got = (data["algorithm"], data["segment_size"])
                if got != (expected.algorithm, expected.segment_size):
                    print(
                        f"FAIL: served {operation} selection diverged at "
                        f"P={procs} m={nbytes}: {got} != "
                        f"{(expected.algorithm, expected.segment_size)}"
                    )
                    return 1
                queries += 1
            grid = f"{len(table.proc_points)}x{len(table.size_points)}"
            print(f"  {operation}: {len(QUERY_POINTS)} queries "
                  f"bit-identical to the offline {grid} table")

    print(f"OK: {queries} served selections across "
          f"{len(collectives)} collectives, all bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
