"""Tests for the self-tuning loop (ISSUE 8).

Guideline verification, online drift detection, incremental
recalibration, artifact diffs, degraded-mode interplay, and the
end-to-end self-healing acceptance scenario: a live service on a clean
artifact converges — via sampled queries, a fired CUSUM and an
incremental rebuild — to an artifact that agrees with the drifted
platform's measured oracle, while no-drift runs stay bit-identical.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

import pytest

from repro import obs
from repro.bench.chaos import drift_scenario
from repro.clusters import MINICLUSTER
from repro.errors import (
    ArtifactError,
    GuidelineViolationError,
    TuningError,
)
from repro.exec.cache import ResultCache
from repro.exec.runner import ParallelRunner
from repro.selection.codegen import generate_python
from repro.selection.decision_table import DecisionTable
from repro.selection.oracle import Selection
from repro.service import (
    ArtifactRegistry,
    SelectionService,
    ServiceThread,
    build_artifact,
    load_artifact,
)
from repro.service.artifact import ArtifactEntry, SelectionArtifact
from repro.tuning import (
    DriftConfig,
    DriftDetector,
    Guideline,
    QuerySampler,
    SampledQuery,
    SelfTuner,
    check_guidelines,
    diff_artifacts,
    format_diff,
    rebuild_artifact,
    register_guideline,
    registered_guidelines,
    unregister_guideline,
    verify_guidelines,
)
from repro.units import KiB

#: Segmented-broadcast regime sizes: model-form error is small here, so
#: guideline checks and oracle agreement are clean (see bench/chaos.py).
SIZES = (256 * KiB, 512 * KiB, 1024 * KiB)

#: Calibration knobs shared by builds and rebuilds — passing the same
#: dict to both is what makes no-drift rebuilds replay bit-identically.
CAL = dict(
    procs=8, gamma_max_procs=3, sizes=SIZES, max_reps=3, seed=0,
)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("tuning-cache")


def make_runner(cache_dir) -> ParallelRunner:
    return ParallelRunner(jobs=1, cache=ResultCache(cache_dir))


@pytest.fixture(scope="module")
def clean_artifact(cache_dir):
    """Clean three-collective artifact on the pristine test cluster."""
    return build_artifact(
        MINICLUSTER,
        collectives=("bcast", "gather", "barrier"),
        proc_points=(4, 8),
        size_points=SIZES,
        runner=make_runner(cache_dir),
        **CAL,
    )


def perturb_table(artifact: SelectionArtifact, operation: str = "bcast"):
    """A copy of ``artifact`` with one decision swapped to a wrong one.

    The generated source is regenerated from the perturbed table, so the
    artifact still passes the *syntactic* self-check (``verify()``) and
    re-hashes as a valid document — only the semantic guideline check can
    catch it.
    """
    entry = artifact.entries[operation]
    choices = [list(row) for row in entry.table.choices]
    current = choices[0][0]
    wrong = "linear" if current.algorithm != "linear" else "chain"
    choices[0][0] = Selection(wrong, current.segment_size, operation=operation)
    table = DecisionTable(
        proc_points=entry.table.proc_points,
        size_points=entry.table.size_points,
        choices=tuple(tuple(row) for row in choices),
    )
    entries = dict(artifact.entries)
    entries[operation] = ArtifactEntry(
        operation=operation,
        platform=entry.platform,
        table=table,
        function_name=entry.function_name,
        source=generate_python(table, function_name=entry.function_name),
    )
    return SelectionArtifact(
        cluster=artifact.cluster,
        cluster_fingerprint=artifact.cluster_fingerprint,
        entries=entries,
        fabric=artifact.fabric,
    )


class TestGuidelines:
    def test_clean_artifact_passes(self, clean_artifact):
        report = verify_guidelines(clean_artifact)
        assert report.ok()
        assert report.violations == ()
        assert set(report.checked) == {
            "selection_optimal", "monotone_in_size", "split_robustness",
        }
        assert report.cells > 0

    def test_mockups_skipped_not_dropped(self, clean_artifact):
        report = verify_guidelines(clean_artifact)
        assert "bcast_le_scatter_plus_allgather" in report.skipped
        assert "allgather" in report.skipped["bcast_le_scatter_plus_allgather"]
        # gather is present, allgather is not: the reason names only the
        # genuinely missing operand.
        assert "gather_le_allgather" in report.skipped

    def test_report_stamped_outside_hash(self, clean_artifact, tmp_path):
        assert clean_artifact.guidelines["ok"] is True
        bare = SelectionArtifact(
            cluster=clean_artifact.cluster,
            cluster_fingerprint=clean_artifact.cluster_fingerprint,
            entries=clean_artifact.entries,
        )
        assert bare.content_hash() == clean_artifact.content_hash()
        path = clean_artifact.save(tmp_path / "stamped.json")
        loaded = load_artifact(path)
        assert loaded.guidelines == clean_artifact.guidelines
        assert loaded.content_hash() == clean_artifact.content_hash()

    def test_perturbed_table_violates_selection_optimality(
        self, clean_artifact
    ):
        bad = perturb_table(clean_artifact)
        bad.verify()  # syntactically sound: codegen agrees with the table
        report = verify_guidelines(bad)
        assert not report.ok()
        assert any(
            v.guideline == "selection_optimal" and v.operation == "bcast"
            for v in report.violations
        )
        assert report.worst_margin > 0

    def test_strict_gate_refuses_perturbed(self, clean_artifact):
        bad = perturb_table(clean_artifact)
        with pytest.raises(GuidelineViolationError) as excinfo:
            check_guidelines(bad)
        assert "selection_optimal" in str(excinfo.value)
        assert excinfo.value.report is not None
        assert not excinfo.value.report.ok()

    def test_duplicate_registration_refused(self):
        from repro.tuning.guidelines import default_guidelines

        existing = default_guidelines()[0]
        with pytest.raises(TuningError):
            register_guideline(existing)
        register_guideline(existing, replace=True)  # explicit override ok

    def test_custom_guideline_lifecycle(self, clean_artifact):
        guideline = Guideline(
            name="_test_needs_allgather",
            description="skipped until allgather exists",
            requires=frozenset({"allgather"}),
            check=lambda artifact, slack: [],
        )
        register_guideline(guideline)
        try:
            report = verify_guidelines(clean_artifact)
            assert "_test_needs_allgather" in report.skipped
        finally:
            unregister_guideline("_test_needs_allgather")
        assert "_test_needs_allgather" not in registered_guidelines()

    def test_monotone_and_split_on_stub(self):
        """Unit-check the inequality math on a hand-built entry."""

        class StubPlatform:
            def predict(self, algorithm, procs, nbytes, segment_size=0):
                # Pathological: time *decreases* with size, violating
                # monotony; split-robustness holds (t(2m) < 2 t(m)).
                return 1.0 / nbytes

        table = DecisionTable(
            proc_points=(4,),
            size_points=(1024, 2048),
            choices=((Selection("linear", 0), Selection("linear", 0)),),
        )
        entry = ArtifactEntry(
            operation="bcast", platform=StubPlatform(), table=table,
            function_name="f", source="",
        )

        class StubArtifact:
            entries = {"bcast": entry}
            operations = ["bcast"]
            artifact_id = "stub"

        from repro.tuning.guidelines import default_guidelines

        by_name = {g.name: g for g in default_guidelines()}
        monotone = verify_guidelines(
            StubArtifact(), guidelines=[by_name["monotone_in_size"]]
        )
        assert len(monotone.violations) == 1
        assert monotone.violations[0].guideline == "monotone_in_size"
        split = verify_guidelines(
            StubArtifact(), guidelines=[by_name["split_robustness"]]
        )
        assert split.ok()


class TestDriftDetector:
    def test_fires_on_sustained_drift(self):
        detector = DriftDetector(DriftConfig(
            allowance=0.05, threshold=0.5, min_samples=2,
        ))
        assert not detector.update(0.3)  # min_samples gate
        assert detector.update(0.35)     # cusum = 0.55 > 0.5
        assert detector.fired
        assert detector.triggers == 1

    def test_allowance_absorbs_tolerable_error(self):
        detector = DriftDetector(DriftConfig(allowance=0.05, threshold=0.5))
        for _ in range(100):
            detector.update(0.04)
        assert not detector.fired
        assert detector.cusum == 0.0

    def test_isolated_blip_decays(self):
        detector = DriftDetector(DriftConfig(allowance=0.05, threshold=0.5))
        detector.update(0.4)
        for _ in range(10):
            detector.update(0.0)
        assert detector.cusum == 0.0
        assert not detector.fired

    def test_reset_rearms(self):
        detector = DriftDetector(DriftConfig(
            allowance=0.0, threshold=0.1, min_samples=1,
        ))
        assert detector.update(1.0)
        detector.reset()
        assert not detector.fired
        assert detector.samples == 0
        assert detector.triggers == 1  # lifetime counter survives reset
        state = detector.state()
        assert state["fired"] is False

    def test_mean_error_windowed(self):
        detector = DriftDetector(DriftConfig(window=2))
        detector.update(1.0)
        detector.update(0.5)
        detector.update(0.1)
        assert detector.mean_error() == pytest.approx(0.3)

    def test_config_validation(self):
        with pytest.raises(TuningError):
            DriftConfig(allowance=-0.1)
        with pytest.raises(TuningError):
            DriftConfig(threshold=0.0)
        with pytest.raises(TuningError):
            DriftConfig(window=0)


def make_query_span(**attrs):
    with obs.span("select.query", force=True, **attrs) as span:
        pass
    return span


QUERY_ATTRS = dict(
    cluster="minicluster", operation="bcast", fabric="",
    procs=8, nbytes=262144, algorithm="chain", segment_size=8192,
)


class TestQuerySampler:
    def test_every_nth_cadence(self):
        sampler = QuerySampler(every=4)
        decisions = [sampler.should_sample() for _ in range(9)]
        assert decisions == [
            True, False, False, False, True, False, False, False, True,
        ]

    def test_captures_forced_spans_while_tracing_disabled(self):
        sampler = QuerySampler().attach()
        try:
            make_query_span(**QUERY_ATTRS)
            with obs.span("other.span", force=True):
                pass  # non-matching span names are ignored
        finally:
            sampler.detach()
        samples = sampler.drain()
        assert samples == [SampledQuery(**QUERY_ATTRS)]
        assert sampler.sampled == 1
        # Detached: further spans are not captured.
        make_query_span(**QUERY_ATTRS)
        assert sampler.drain() == []

    def test_malformed_span_ignored(self):
        sampler = QuerySampler().attach()
        try:
            make_query_span(cluster="x")  # missing required attributes
        finally:
            sampler.detach()
        assert sampler.drain() == []

    def test_capacity_drops_oldest(self):
        sampler = QuerySampler(capacity=2)
        for nbytes in (1, 2, 3):
            sampler(type(
                "S", (), {"name": "select.query",
                          "attributes": dict(QUERY_ATTRS, nbytes=nbytes)},
            )())
        assert sampler.dropped == 1
        assert [s.nbytes for s in sampler.drain()] == [2, 3]

    def test_double_attach_refused(self):
        sampler = QuerySampler().attach()
        try:
            with pytest.raises(TuningError):
                sampler.attach()
        finally:
            sampler.detach()

    def test_validation(self):
        with pytest.raises(TuningError):
            QuerySampler(every=0)


class TestRebuild:
    def test_no_drift_rebuild_bit_identical(self, clean_artifact, cache_dir):
        runner = make_runner(cache_dir)
        rebuilt = rebuild_artifact(
            clean_artifact, MINICLUSTER, runner=runner, **CAL
        )
        assert runner.stats.simulations == 0  # warm cache replay only
        assert rebuilt.content_hash() == clean_artifact.content_hash()
        assert rebuilt.build_info["rebuilt"] == [
            "barrier", "bcast", "gather",
        ]
        assert rebuilt.build_info["parent"] == clean_artifact.content_hash()
        assert rebuilt.guidelines["ok"] is True

    def test_subset_rebuild_carries_other_entries(
        self, clean_artifact, cache_dir
    ):
        runner = make_runner(cache_dir)
        rebuilt = rebuild_artifact(
            clean_artifact, MINICLUSTER, ["bcast"], runner=runner, **CAL
        )
        assert runner.stats.simulations == 0
        assert rebuilt.content_hash() == clean_artifact.content_hash()
        assert rebuilt.entries["gather"] is clean_artifact.entries["gather"]
        assert rebuilt.entries["barrier"] is clean_artifact.entries["barrier"]
        assert rebuilt.build_info["rebuilt"] == ["bcast"]

    def test_drifted_rebuild_changes_only_target(
        self, clean_artifact, cache_dir
    ):
        runner = make_runner(cache_dir)
        drifted, _oracle = drift_scenario(
            MINICLUSTER, procs=8, severity=0.3, runner=runner,
        )
        rebuilt = rebuild_artifact(
            clean_artifact, drifted, ["bcast"], runner=runner, **CAL
        )
        assert rebuilt.content_hash() != clean_artifact.content_hash()
        assert rebuilt.entries["gather"] is clean_artifact.entries["gather"]
        assert rebuilt.cluster == clean_artifact.cluster
        assert rebuilt.cluster_fingerprint == drifted.fingerprint()
        rebuilt.verify()

    def test_unknown_operation_refused(self, clean_artifact):
        with pytest.raises(TuningError, match="allgather"):
            rebuild_artifact(clean_artifact, MINICLUSTER, ["allgather"])

    def test_empty_operations_refused(self, clean_artifact):
        with pytest.raises(TuningError):
            rebuild_artifact(clean_artifact, MINICLUSTER, [])


class TestDiff:
    def test_identical(self, clean_artifact, cache_dir):
        rebuilt = rebuild_artifact(
            clean_artifact, MINICLUSTER, runner=make_runner(cache_dir), **CAL
        )
        diff = diff_artifacts(clean_artifact, rebuilt)
        assert diff.identical()
        assert diff.same_hash
        assert "identical" in format_diff(diff)

    def test_changed_cells_localised(self, clean_artifact, cache_dir):
        runner = make_runner(cache_dir)
        drifted, _ = drift_scenario(
            MINICLUSTER, procs=8, severity=0.3, runner=runner,
        )
        rebuilt = rebuild_artifact(
            clean_artifact, drifted, ["bcast"], runner=runner, **CAL
        )
        diff = diff_artifacts(clean_artifact, rebuilt)
        assert not diff.identical()
        assert {delta.operation for delta in diff.changed} == {"bcast"}
        assert diff.cells > 0
        text = format_diff(diff)
        assert "changed cells" in text
        assert "->" in text

    def test_operation_coverage_changes(self, clean_artifact):
        narrowed = SelectionArtifact(
            cluster=clean_artifact.cluster,
            cluster_fingerprint=clean_artifact.cluster_fingerprint,
            entries={"bcast": clean_artifact.entries["bcast"]},
        )
        diff = diff_artifacts(clean_artifact, narrowed)
        assert diff.removed_operations == ("barrier", "gather")
        assert not diff.added_operations
        reverse = diff_artifacts(narrowed, clean_artifact)
        assert reverse.added_operations == ("barrier", "gather")

    def test_perturbed_cell_reported(self, clean_artifact):
        bad = perturb_table(clean_artifact)
        diff = diff_artifacts(clean_artifact, bad)
        assert len(diff.changed) == 1
        delta = diff.changed[0]
        assert delta.operation == "bcast"
        assert delta.old != delta.new


class TestCli:
    def test_verify_guidelines_ok(self, clean_artifact, tmp_path, capsys):
        from repro.cli import main

        path = clean_artifact.save(tmp_path / "clean.json")
        assert main(["artifact", "verify", str(path), "--guidelines"]) == 0
        out = capsys.readouterr().out
        assert "no guideline violations" in out

    def test_verify_strict_refuses_perturbed(
        self, clean_artifact, tmp_path, capsys
    ):
        from repro.cli import main

        bad = perturb_table(clean_artifact)
        path = bad.save(tmp_path / "bad.json")
        # Report-only: violations are printed but the exit stays 0.
        assert main(["artifact", "verify", str(path), "--guidelines"]) == 0
        assert "VIOLATIONS" in capsys.readouterr().out
        # Strict: the gate refuses.
        assert main(
            ["artifact", "verify", str(path), "--guidelines", "--strict"]
        ) == 1

    def test_artifact_diff(self, clean_artifact, tmp_path, capsys):
        from repro.cli import main

        a = clean_artifact.save(tmp_path / "a.json")
        b = perturb_table(clean_artifact).save(tmp_path / "b.json")
        assert main(["artifact", "diff", str(a), str(a)]) == 0
        json_out = tmp_path / "diff.json"
        assert main(
            ["artifact", "diff", str(a), str(b), "--json", str(json_out)]
        ) == 1
        out = capsys.readouterr().out
        assert "changed cells: 1" in out
        data = json.loads(json_out.read_text())
        assert data["identical"] is False
        assert len(data["changed"]) == 1


def post_queries(port, sizes, repeat=3, procs=8):
    """Fire /select queries; returns the served algorithm per size."""
    conn = HTTPConnection("127.0.0.1", port, timeout=10)
    served = {}
    try:
        for _ in range(repeat):
            for nbytes in sizes:
                body = json.dumps({
                    "cluster": "minicluster", "operation": "bcast",
                    "procs": procs, "nbytes": nbytes,
                })
                conn.request("POST", "/select", body)
                response = conn.getresponse()
                data = json.loads(response.read())
                assert response.status == 200, data
                served[nbytes] = data["algorithm"]
    finally:
        conn.close()
    return served


def get_text(port, path):
    conn = HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        raw = response.read().decode()
    finally:
        conn.close()
    return raw


@pytest.fixture()
def live_service(clean_artifact, tmp_path):
    """A served bcast-only artifact in a file-backed registry."""
    bcast_only = build_artifact(
        MINICLUSTER,
        collectives=("bcast",),
        proc_points=(8,),
        size_points=SIZES,
        platforms={"bcast": clean_artifact.entries["bcast"].platform},
    )
    directory = tmp_path / "artifacts"
    directory.mkdir()
    bcast_only.save(directory / "minicluster.json")
    service = SelectionService(ArtifactRegistry(directory), cache_size=64)
    with ServiceThread(service) as handle:
        yield service, handle, bcast_only


def make_tuner(service, artifact, cache_dir, **overrides):
    kwargs = dict(
        artifact_file="minicluster.json",
        calib_kwargs=CAL,
        drift_config=DriftConfig(
            allowance=0.05, threshold=0.2, min_samples=2,
        ),
        sampler=QuerySampler(every=1),
        runner=make_runner(cache_dir),
        strict=True,
    )
    kwargs.update(overrides)
    return SelfTuner(service, artifact, MINICLUSTER, **kwargs)


class TestSelfHealing:
    """The end-to-end acceptance scenario and its no-drift control."""

    def test_drift_fires_and_service_converges(
        self, live_service, cache_dir
    ):
        service, handle, artifact = live_service
        runner = make_runner(cache_dir)
        drifted, oracle = drift_scenario(
            MINICLUSTER, procs=8, severity=0.3, runner=runner,
        )
        with make_tuner(service, artifact, cache_dir, runner=runner) as tuner:
            tuner.set_reality(drifted)
            served = post_queries(handle.port, SIZES)
            # The clean-calibrated table serves a now-suboptimal pick.
            assert set(served.values()) == {"chain"}

            health = tuner.step()

            # Drift fired and was recorded in /metrics.
            detector = tuner.detectors["bcast"]
            assert detector.triggers == 1
            metrics = get_text(handle.port, "/metrics")
            assert 'repro_drift_samples_total{operation="bcast"}' in metrics
            assert 'repro_drift_triggers_total{operation="bcast"} 1' in metrics
            assert 'repro_drift_mean_error{operation="bcast"}' in metrics
            assert (
                'repro_recalibrations_total{operation="bcast",outcome="ok"} 1'
                in metrics
            ) or (
                'repro_recalibrations_total{outcome="ok",operation="bcast"} 1'
                in metrics
            )

            # Recalibration happened, passed guidelines, and is serving.
            assert health["recalibrations"] == 1
            assert tuner.artifact.content_hash() != artifact.content_hash()
            assert tuner.artifact.guidelines["ok"] is True
            healthz = json.loads(get_text(handle.port, "/healthz"))
            assert healthz["status"] == "ok"
            assert healthz["tuning"]["recalibrations"] == 1

            # The served decisions now agree with the drifted oracle.
            converged = post_queries(handle.port, SIZES)
            for nbytes, algorithm in converged.items():
                best, _ = oracle.best(8, nbytes)
                assert algorithm == best.algorithm
            on_disk = load_artifact(
                service.registry.directory / "minicluster.json"
            )
            assert on_disk.content_hash() == tuner.artifact.content_hash()
            assert on_disk.build_info["rebuilt"] == ["bcast"]
            assert on_disk.build_info["parent"] == artifact.content_hash()

    def test_no_drift_run_is_bit_identical(self, live_service, cache_dir):
        service, handle, artifact = live_service
        with make_tuner(service, artifact, cache_dir) as tuner:
            post_queries(handle.port, SIZES)
            health = tuner.step()
            detector = tuner.detectors["bcast"]
            assert detector.samples > 0
            assert not detector.fired
            assert health["recalibrations"] == 0
            assert tuner.artifact.content_hash() == artifact.content_hash()
            # Explicit no-drift recalibration is free and hash-stable.
            runner = tuner.runner
            before = runner.stats.simulations
            assert tuner.recalibrate(["bcast"])
            assert runner.stats.simulations == before  # warm cache: 0 sims
            assert tuner.artifact.content_hash() == artifact.content_hash()

    def test_healthz_shape_without_tuner(self, live_service):
        _service, handle, _artifact = live_service
        healthz = json.loads(get_text(handle.port, "/healthz"))
        assert "tuning" not in healthz


class TestDegradedInterplay:
    """Satellite: failed rebuild -> last-known-good + degraded -> recovery."""

    def test_failed_rebuild_keeps_serving_then_recovers(
        self, live_service, cache_dir, monkeypatch
    ):
        service, handle, artifact = live_service
        with make_tuner(service, artifact, cache_dir) as tuner:
            import repro.tuning.tuner as tuner_module

            def exploding_rebuild(*args, **kwargs):
                raise ArtifactError("injected rebuild failure")

            monkeypatch.setattr(
                tuner_module, "rebuild_artifact", exploding_rebuild
            )
            assert tuner.recalibrate(["bcast"]) is False
            assert tuner.failed_recalibrations == 1
            assert "injected rebuild failure" in tuner.last_error

            # Still serving last-known-good, reported degraded everywhere.
            served = post_queries(handle.port, SIZES, repeat=1)
            assert served  # queries keep being answered
            assert service.registry.lookup(
                "minicluster", "bcast"
            ).content_hash() == artifact.content_hash()
            metrics = get_text(handle.port, "/metrics")
            assert "repro_service_degraded 1" in metrics
            assert (
                'repro_recalibrations_total{operation="bcast",'
                'outcome="failed"} 1' in metrics
                or 'repro_recalibrations_total{outcome="failed",'
                'operation="bcast"} 1' in metrics
            )
            healthz = json.loads(get_text(handle.port, "/healthz"))
            assert healthz["status"] == "degraded"
            assert "recalibration failed" in healthz["reason"]
            assert healthz["tuning"]["failed_recalibrations"] == 1

            # Next successful rebuild clears the condition.
            monkeypatch.setattr(
                tuner_module, "rebuild_artifact", rebuild_artifact
            )
            assert tuner.recalibrate(["bcast"]) is True
            assert tuner.last_error is None
            assert service.degraded_reason is None
            metrics = get_text(handle.port, "/metrics")
            assert "repro_service_degraded 0" in metrics
            healthz = json.loads(get_text(handle.port, "/healthz"))
            assert healthz["status"] == "ok"


class TestStrictBuildGate:
    def test_strict_build_refuses_guideline_violation(
        self, clean_artifact, cache_dir
    ):
        """A strict build routes through the guideline gate."""
        from repro.tuning.guidelines import GuidelineViolation

        always_violated = Guideline(
            name="_test_always_violated",
            description="test gate",
            requires=frozenset(),
            check=lambda artifact, slack: [
                GuidelineViolation(
                    guideline="_test_always_violated",
                    operation="bcast", procs=2, nbytes=1,
                    lhs=2.0, rhs=1.0, margin=1.0,
                )
            ],
        )
        register_guideline(always_violated)
        try:
            with pytest.raises(GuidelineViolationError, match="refused"):
                build_artifact(
                    MINICLUSTER,
                    collectives=("bcast",),
                    proc_points=(8,),
                    size_points=SIZES,
                    platforms={
                        "bcast": clean_artifact.entries["bcast"].platform,
                    },
                    strict=True,
                )
        finally:
            unregister_guideline("_test_always_violated")


class TestRecalibrateCacheInvalidation:
    """Bugfix audit: a hot reload during recalibration must also flush
    the service's LRU query cache — a warm entry from the previous
    artifact must never be served after the swap."""

    def test_recalibrate_evicts_warm_lru_entries(
        self, live_service, cache_dir, clean_artifact, monkeypatch
    ):
        service, _handle, artifact = live_service
        query = {
            "cluster": "minicluster", "operation": "bcast",
            "procs": 8, "nbytes": SIZES[0],
        }
        warm = service.handle_select(dict(query))
        assert warm["artifact"] == artifact.artifact_id
        # Second hit comes from the LRU; still the old artifact.
        assert service.handle_select(dict(query))["artifact"] == (
            artifact.artifact_id
        )

        rebuilt = build_artifact(
            MINICLUSTER,
            collectives=("bcast",),
            proc_points=(8,),
            size_points=SIZES[:2],
            platforms={"bcast": clean_artifact.entries["bcast"].platform},
        )
        assert rebuilt.artifact_id != artifact.artifact_id
        monkeypatch.setattr(
            "repro.tuning.tuner.rebuild_artifact",
            lambda *args, **kwargs: rebuilt,
        )
        with make_tuner(service, artifact, cache_dir) as tuner:
            assert tuner.recalibrate(["bcast"]) is True
        served = service.handle_select(dict(query))
        assert served["artifact"] == rebuilt.artifact_id
