"""Formatting of the paper's tables from experiment results."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.bench.runner import SelectionRow
from repro.estimation.alphabeta import AlphaBeta
from repro.estimation.gamma import GammaEstimate
from repro.units import format_bytes


def format_table1(estimates: Mapping[str, GammaEstimate]) -> str:
    """Table 1: estimated γ(P) per cluster.

    ``estimates`` maps cluster names to their γ estimates; clusters become
    columns, exactly like the paper's layout.
    """
    clusters = list(estimates)
    procs = sorted(
        {p for estimate in estimates.values() for p in estimate.table if p > 2}
    )
    header = ["P"] + clusters
    rows = [
        [str(p)] + [f"{estimates[c].table.get(p, float('nan')):.3f}" for c in clusters]
        for p in procs
    ]
    return _render([header] + rows, title="Table 1: estimated gamma(P)")


def format_table2(per_cluster: Mapping[str, Mapping[str, AlphaBeta]]) -> str:
    """Table 2: per-algorithm α and β per cluster."""
    blocks = []
    for cluster, estimates in per_cluster.items():
        header = ["Collective algorithm", "alpha (s)", "beta (s/byte)"]
        rows = [
            [
                estimate.algorithm,
                f"{estimate.alpha:.2e}",
                f"{estimate.beta:.2e}",
            ]
            for estimate in estimates.values()
        ]
        blocks.append(
            _render([header] + rows, title=f"Table 2 ({cluster}): broadcast")
        )
    return "\n\n".join(blocks)


def format_table3(rows: Sequence[SelectionRow], title: str) -> str:
    """Table 3: best vs model-based vs Open MPI selection, with degradation."""
    header = ["m", "Best", "Model-based (%)", "Open MPI (%)"]
    body = [
        [
            format_bytes(row.nbytes),
            row.best.algorithm,
            f"{row.model.algorithm} ({row.model_degradation:.0f})",
            f"{row.ompi.algorithm} ({row.ompi_degradation:.0f})",
        ]
        for row in rows
    ]
    return _render([header] + body, title=title)


def _render(rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Monospace table rendering with column auto-sizing."""
    widths = [
        max(len(str(row[col])) for row in rows) for col in range(len(rows[0]))
    ]
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
