"""Implementation-derived models of the barrier algorithms (extension).

Barrier is the first collective Pjevsivac-Grbovic et al. [8] studied, and
the degenerate case of the paper's framework: there is no payload, so each
model is a pure message-count times the per-message cost α — β never
appears (every coefficient pair has ``c_β = 0``).  Selection therefore
varies with the communicator size only.

Critical-path message counts, read off :mod:`repro.collectives.barrier`:

* linear (fan-in/fan-out): the root serialises ``P-1`` arrivals, then
  ``P-1`` departures → ``c_α = 2(P-1)``;
* recursive doubling: ``ceil(log2 P)`` exchange rounds, plus a notify and
  a release hop when ``P`` is not a power of two → ``+2``;
* double ring: the token crosses every rank twice → ``c_α = 2P``;
* Bruck: ``ceil(log2 P)`` rounds.
"""

from __future__ import annotations

from math import ceil, log2

from repro.models.base import BcastModel, LinearCoefficients


class _BarrierModel(BcastModel):
    """Barrier models ignore the message size and segmenting entirely."""

    #: A barrier's payload is always 0 bytes; unlike the data-moving
    #: collectives, that does not make it a no-op.
    zero_bytes_noop = False

    def message_count(self, procs: int) -> float:
        raise NotImplementedError

    def coefficients(
        self, procs: int, nbytes: int = 0, segment_size: int = 0
    ) -> LinearCoefficients:
        del nbytes, segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        return LinearCoefficients(self.message_count(procs), 0.0)


class LinearBarrierModel(_BarrierModel):
    """Fan-in/fan-out: ``2(P-1)`` serialised root messages."""

    algorithm = "linear"

    def message_count(self, procs: int) -> float:
        return 2.0 * (procs - 1)


class RecursiveDoublingBarrierModel(_BarrierModel):
    """``ceil(log2 P)`` rounds, plus surplus fold/release off powers of two."""

    algorithm = "recursive_doubling"

    def message_count(self, procs: int) -> float:
        rounds = ceil(log2(procs))
        surplus = 0.0 if procs & (procs - 1) == 0 else 2.0
        return rounds + surplus


class DoubleRingBarrierModel(_BarrierModel):
    """Two full laps of the ring: ``2P`` sequential hops."""

    algorithm = "double_ring"

    def message_count(self, procs: int) -> float:
        return 2.0 * procs


class BruckBarrierModel(_BarrierModel):
    """Dissemination: ``ceil(log2 P)`` rounds for any size."""

    algorithm = "bruck"

    def message_count(self, procs: int) -> float:
        return float(ceil(log2(procs)))


#: Derived barrier models keyed by the algorithm they describe.
DERIVED_BARRIER_MODELS: dict[str, type[BcastModel]] = {
    model.algorithm: model
    for model in (
        LinearBarrierModel,
        RecursiveDoublingBarrierModel,
        DoubleRingBarrierModel,
        BruckBarrierModel,
    )
}
