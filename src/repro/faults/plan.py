"""Declarative, deterministic fault plans for the simulator.

A :class:`FaultPlan` describes *what goes wrong* on a simulated cluster:
straggler nodes (slow injection and/or slow CPU), degraded or flapping
links (time-windowed latency/bandwidth multipliers on node pairs),
message loss with a timeout + retransmit cost, and heavy-tailed noise
replacing the default lognormal jitter.

Plans are plain frozen dataclasses of primitives, so they are hashable,
picklable and canonically serialisable.  A plan never owns an RNG: every
random draw it induces is made by the fabric from a PRNG seeded with the
measurement seed, which is what makes faulty runs bit-reproducible — the
same ``(cluster, FaultPlan, seed)`` triple yields the same timings in any
process, serial or in a worker pool.

Plans ride on :class:`~repro.clusters.spec.ClusterSpec` (see
``ClusterSpec.with_faults``) and therefore flow into
:meth:`ClusterSpec.fingerprint` and every ``SimJob`` fingerprint: faulty
results are cached under their own keys, and a spec without a plan keeps
its pre-fault fingerprint bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

from repro.errors import FaultError


@dataclass(frozen=True)
class StragglerFault:
    """One slow node.

    ``inject_factor`` multiplies the node's egress injection cost (NIC or
    TCP-stack pathology, composing with ``ClusterSpec.slow_nodes``);
    ``compute_factor`` multiplies CPU time charged to ranks on the node
    (``send_overhead`` and explicit ``compute`` calls) — an overloaded or
    thermally-throttled host.
    """

    node: int
    inject_factor: float = 1.0
    compute_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultError(f"straggler node must be >= 0, got {self.node}")
        if self.inject_factor < 1.0 or self.compute_factor < 1.0:
            raise FaultError(
                f"straggler factors must be >= 1, got inject={self.inject_factor} "
                f"compute={self.compute_factor} for node {self.node}"
            )


@dataclass(frozen=True)
class LinkFault:
    """A degraded link between two nodes, optionally time-windowed/flapping.

    The fault applies to messages from ``src`` to ``dst`` (directional; add
    the mirrored fault for a symmetric pathology).  ``latency_factor``
    multiplies the wire latency, ``byte_factor`` the per-byte costs (i.e.
    divides effective bandwidth).  The fault is active for message start
    times in ``[start, end)``; with ``period > 0`` it *flaps*: within each
    period, only the first ``on_fraction`` of it is degraded.
    """

    src: int
    dst: int
    latency_factor: float = 1.0
    byte_factor: float = 1.0
    start: float = 0.0
    end: float = math.inf
    period: float = 0.0
    on_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise FaultError(f"link endpoints must be >= 0, got {self.src}->{self.dst}")
        if self.latency_factor < 1.0 or self.byte_factor < 1.0:
            raise FaultError(
                f"link factors must be >= 1, got latency={self.latency_factor} "
                f"byte={self.byte_factor} for {self.src}->{self.dst}"
            )
        if self.start < 0 or self.end < self.start:
            raise FaultError(
                f"link window must satisfy 0 <= start <= end, got "
                f"[{self.start}, {self.end})"
            )
        if self.period < 0:
            raise FaultError(f"link period must be >= 0, got {self.period}")
        if not 0.0 <= self.on_fraction <= 1.0:
            raise FaultError(
                f"on_fraction must be in [0, 1], got {self.on_fraction}"
            )

    def active(self, t: float) -> bool:
        """Whether the fault degrades a message starting at time ``t``."""
        if not self.start <= t < self.end:
            return False
        if self.period <= 0.0:
            return True
        phase = math.fmod(t - self.start, self.period)
        return phase < self.on_fraction * self.period


@dataclass(frozen=True)
class MessageLoss:
    """Uniform per-message loss with sender-side timeout + retransmit.

    Each inter-node payload message is lost with probability ``rate``
    (drawn from the fabric's seeded PRNG); a lost attempt costs the full
    injection plus ``timeout`` seconds before the sender re-injects.  After
    ``max_retries`` losses the next attempt always succeeds, so transfers
    terminate.  Control messages (RTS/CTS) are never lost — modelling a
    reliable transport whose *payload* path suffers (e.g. TCP
    retransmission timers firing on bulk data).
    """

    rate: float
    timeout: float
    max_retries: int = 5

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise FaultError(f"loss rate must be in [0, 1), got {self.rate}")
        if self.timeout < 0:
            raise FaultError(f"loss timeout must be >= 0, got {self.timeout}")
        if self.max_retries < 0:
            raise FaultError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclass(frozen=True)
class HeavyTailSpec:
    """Heavy-tailed noise replacing/augmenting the lognormal default.

    ``kind="pareto"``: unit-mean Pareto factors with shape ``tail_index``
    (smaller = heavier tail; must be > 1 so the mean exists).

    ``kind="mixture"``: unit-mean lognormal base (``sigma``) that with
    probability ``spike_probability`` is multiplied by a Pareto spike of
    mean ``spike_scale`` — the "mostly quiet, occasionally terrible"
    profile of shared clusters.
    """

    kind: str = "pareto"
    tail_index: float = 2.5
    sigma: float = 0.02
    spike_probability: float = 0.01
    spike_scale: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in ("pareto", "mixture"):
            raise FaultError(f"unknown heavy-tail kind {self.kind!r}")
        if self.tail_index <= 1.0:
            raise FaultError(
                f"tail_index must be > 1 for a finite mean, got {self.tail_index}"
            )
        if self.sigma < 0:
            raise FaultError(f"sigma must be >= 0, got {self.sigma}")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise FaultError(
                f"spike_probability must be in [0, 1], got {self.spike_probability}"
            )
        if self.spike_scale < 1.0:
            raise FaultError(f"spike_scale must be >= 1, got {self.spike_scale}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault scenario: what breaks, where, when, and how badly.

    An empty plan (the default) is inert: ``ClusterSpec.make_world``
    builds the exact pre-fault world for it, and the spec fingerprint is
    unchanged — "faults disabled" and "no fault layer" are the same thing,
    bit for bit.  ``salt`` separates the fault RNG streams of otherwise
    identical plans (e.g. to draw independent loss realisations).
    """

    stragglers: tuple[StragglerFault, ...] = ()
    links: tuple[LinkFault, ...] = ()
    loss: MessageLoss | None = None
    noise: HeavyTailSpec | None = None
    salt: int = 0

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for straggler in self.stragglers:
            if straggler.node in seen:
                raise FaultError(f"duplicate straggler for node {straggler.node}")
            seen.add(straggler.node)

    def enabled(self) -> bool:
        """Whether this plan perturbs anything at all."""
        return bool(
            self.stragglers or self.links or self.loss is not None
            or self.noise is not None
        )

    # -- serialisation -----------------------------------------------------

    def payload(self) -> dict:
        """Canonical JSON-able form (stable field order via sort_keys)."""
        return {
            "stragglers": [
                {
                    "node": s.node,
                    "inject_factor": s.inject_factor,
                    "compute_factor": s.compute_factor,
                }
                for s in self.stragglers
            ],
            "links": [
                {
                    "src": l.src,
                    "dst": l.dst,
                    "latency_factor": l.latency_factor,
                    "byte_factor": l.byte_factor,
                    "start": l.start,
                    "end": l.end if math.isfinite(l.end) else "inf",
                    "period": l.period,
                    "on_fraction": l.on_fraction,
                }
                for l in self.links
            ],
            "loss": None
            if self.loss is None
            else {
                "rate": self.loss.rate,
                "timeout": self.loss.timeout,
                "max_retries": self.loss.max_retries,
            },
            "noise": None
            if self.noise is None
            else {
                "kind": self.noise.kind,
                "tail_index": self.noise.tail_index,
                "sigma": self.noise.sigma,
                "spike_probability": self.noise.spike_probability,
                "spike_scale": self.noise.spike_scale,
            },
            "salt": self.salt,
        }

    def fingerprint(self) -> str:
        """Stable content hash over every knob of this plan."""
        canonical = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_payload(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`payload` (used by the chaos CLI's JSON input)."""
        try:
            stragglers = tuple(
                StragglerFault(**entry) for entry in data.get("stragglers", ())
            )
            links = []
            for entry in data.get("links", ()):
                entry = dict(entry)
                if entry.get("end") == "inf":
                    entry["end"] = math.inf
                links.append(LinkFault(**entry))
            loss = data.get("loss")
            noise = data.get("noise")
            return cls(
                stragglers=stragglers,
                links=tuple(links),
                loss=None if loss is None else MessageLoss(**loss),
                noise=None if noise is None else HeavyTailSpec(**noise),
                salt=int(data.get("salt", 0)),
            )
        except TypeError as error:
            raise FaultError(f"malformed fault plan payload: {error}") from error

    def describe(self) -> str:
        """One-line summary for CLI output."""
        parts = []
        if self.stragglers:
            parts.append(f"{len(self.stragglers)} straggler(s)")
        if self.links:
            parts.append(f"{len(self.links)} degraded link(s)")
        if self.loss is not None:
            parts.append(f"loss {self.loss.rate:.2%}")
        if self.noise is not None:
            parts.append(f"{self.noise.kind} noise")
        return ", ".join(parts) if parts else "no faults"
