"""A small discrete-event simulation engine built on generator coroutines.

The engine is deliberately minimal: simulated MPI ranks are Python generator
functions that ``yield`` :class:`Future` objects (timeouts, requests, or other
processes) and are resumed when the yielded future completes.  This is the
same execution model as SimPy, re-implemented here so the package has no
dependencies beyond numpy/scipy and so the hot path stays small.

Typical use::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.5)       # advance simulated time
        return "done"

    proc = sim.process(worker(sim), name="worker")
    sim.run()
    assert sim.now == 1.5 and proc.value == "done"

Determinism: events scheduled at the same timestamp fire in scheduling order
(a monotonically increasing sequence number breaks ties), so simulations are
bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.errors import DeadlockError, SimulationError

#: Type of a simulated process body: a generator yielding futures.
SimGen = Generator["Future", Any, Any]


class Future:
    """A one-shot completion token tied to a :class:`Simulator`.

    A future completes at most once, via :meth:`succeed` or :meth:`fail`.
    Callbacks registered with :meth:`add_done_callback` run at the simulated
    time of completion (immediately, if registered after completion).
    """

    __slots__ = ("sim", "_done", "_value", "_exception", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[[Future], None]] | None = None

    @property
    def done(self) -> bool:
        """Whether the future has completed (successfully or not)."""
        return self._done

    @property
    def value(self) -> Any:
        """The result; raises if the future failed or is still pending."""
        if not self._done:
            raise SimulationError("future is not done yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Complete the future successfully with ``value``."""
        self._finish(value, None)

    def fail(self, exception: BaseException) -> None:
        """Complete the future with an exception."""
        self._finish(None, exception)

    def _finish(self, value: Any, exception: BaseException | None) -> None:
        if self._done:
            raise SimulationError("future completed twice")
        self._done = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` when done; immediately if already done."""
        if self._done:
            callback(self)
            return
        if self._callbacks is None:
            self._callbacks = []
        self._callbacks.append(callback)

    def remove_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Detach a pending ``callback``; a no-op if it is not registered.

        Combinators use this to drop their completion hooks from losing
        futures, so a long-lived future does not accumulate one dead
        callback per ``any_of``/``waitany`` it ever participated in.
        """
        if self._callbacks is not None:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass


class Process(Future):
    """A running coroutine; completes with the generator's return value.

    Created via :meth:`Simulator.process`.  A process may be yielded from
    another process to wait for its completion (fork/join).
    """

    __slots__ = ("name", "_generator", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: SimGen, name: str):
        super().__init__(sim)
        self.name = name
        self._generator = generator
        # One reusable bound method: _step suspends tens of thousands of
        # times per simulation, and ``self._resume`` would allocate a fresh
        # bound-method object at each suspension.
        self._resume_cb = self._resume
        sim._live_processes[id(self)] = self
        sim._schedule_at(sim.now, self._start)

    def _start(self) -> None:
        self._step(None, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"

    def _finish(self, value: Any, exception: BaseException | None) -> None:
        self.sim._live_processes.pop(id(self), None)
        super()._finish(value, exception)

    def _step(self, send_value: Any, throw_exc: BaseException | None) -> None:
        generator = self._generator
        while True:
            try:
                if throw_exc is not None:
                    target = generator.throw(throw_exc)
                else:
                    target = generator.send(send_value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return
            if not isinstance(target, Future):
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded {target!r}; "
                        "processes must yield Future objects"
                    )
                )
                return
            if target._done:
                # Resume inline so long chains of ready futures do not churn
                # the event heap.
                throw_exc = target._exception
                send_value = None if throw_exc is not None else target._value
                continue
            target.add_done_callback(self._resume_cb)
            return

    def _resume(self, future: Future) -> None:
        self._step(
            None if future._exception is not None else future._value,
            future._exception,
        )


class Simulator:
    """The event loop: a clock plus a priority queue of events.

    Heap entries are ``(when, seq, future, payload)`` tuples: when ``future``
    is ``None`` the payload is a zero-argument callback to invoke; otherwise
    the future is completed with the payload as its value.  Scheduling a
    future directly (the ``timeout``/``at`` hot path — one per simulated
    send, receive and compute call) avoids allocating a closure per event.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Future | None, Any]] = []
        self._sequence = 0
        self._live_processes: dict[int, Process] = {}
        self.events_processed = 0

    # -- scheduling ------------------------------------------------------

    def _schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now={self.now}"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, None, callback))

    def _schedule_future(self, when: float, future: Future, value: Any) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now={self.now}"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, future, value))

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._schedule_at(self.now + delay, callback)

    def timeout(self, delay: float, value: Any = None) -> Future:
        """A future that completes ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        future = Future(self)
        self._schedule_future(self.now + delay, future, value)
        return future

    def at(self, when: float, value: Any = None) -> Future:
        """A future that completes at absolute simulated time ``when``.

        If ``when`` is in the past it completes at the current time instead
        (useful for "data was already delivered" completions).
        """
        future = Future(self)
        self._schedule_future(max(when, self.now), future, value)
        return future

    def process(self, generator: SimGen, name: str | None = None) -> Process:
        """Spawn a coroutine; returns its completion future."""
        if name is None:
            name = getattr(generator, "__name__", "process")
        return Process(self, generator, name)

    # -- combinators -----------------------------------------------------

    def all_of(self, futures: Sequence[Future]) -> Future:
        """A future completing when all ``futures`` complete.

        Its value is the list of the individual values, in order.  The first
        failure propagates.
        """
        futures = list(futures)
        result = Future(self)
        if not futures:
            result.succeed([])
            return result
        remaining = len(futures)

        def on_done(_completed: Future) -> None:
            nonlocal remaining
            if result._done:
                return
            if _completed._exception is not None:
                result.fail(_completed._exception)
                # Detach from the still-pending futures so they do not keep
                # a dead callback alive for the rest of the simulation.
                for future in futures:
                    if not future._done:
                        future.remove_done_callback(on_done)
                return
            remaining -= 1
            if remaining == 0:
                result.succeed([f._value for f in futures])

        for future in futures:
            future.add_done_callback(on_done)
        return result

    def any_of(self, futures: Sequence[Future]) -> Future:
        """A future completing when the first of ``futures`` completes.

        Its value is ``(index, value)`` of the winner.
        """
        futures = list(futures)
        if not futures:
            raise SimulationError("any_of requires at least one future")
        result = Future(self)
        callbacks: list[Callable[[Future], None]] = []

        def make_callback(index: int) -> Callable[[Future], None]:
            def on_done(completed: Future) -> None:
                if result._done:
                    return
                if completed._exception is not None:
                    result.fail(completed._exception)
                else:
                    result.succeed((index, completed._value))
                # The race is decided: detach from every losing future, so
                # repeated waitany over long-lived requests does not grow
                # their callback lists without bound.
                for future, callback in zip(futures, callbacks):
                    if not future._done:
                        future.remove_done_callback(callback)

            return on_done

        for i, future in enumerate(futures):
            callback = make_callback(i)
            callbacks.append(callback)
            future.add_done_callback(callback)
        return result

    # -- execution -------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        Raises :class:`DeadlockError` if the queue empties while processes
        are still blocked — the simulated analogue of a hung MPI job.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            when, _seq, future, payload = heap[0]
            if until is not None and when > until:
                self.now = until
                return
            heappop(heap)
            self.now = when
            self.events_processed += 1
            if max_events is not None and self.events_processed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            if future is None:
                payload()
            else:
                future.succeed(payload)
        if until is None and self._live_processes:
            raise DeadlockError([p.name for p in self._live_processes.values()])
        if until is not None and self.now < until:
            self.now = until

    def pending_processes(self) -> list[str]:
        """Names of processes that have not yet completed (for diagnostics)."""
        return [p.name for p in self._live_processes.values()]


def run_to_completion(
    process_bodies: Iterable[SimGen], names: Iterable[str] | None = None
) -> tuple[Simulator, list[Process]]:
    """Convenience: run a set of coroutines in a fresh simulator to the end.

    Returns the simulator (for ``sim.now``) and the completed processes.
    """
    sim = Simulator()
    if names is None:
        processes = [sim.process(body) for body in process_bodies]
    else:
        processes = [
            sim.process(body, name=name)
            for body, name in zip(process_bodies, names, strict=True)
        ]
    sim.run()
    return sim, processes
