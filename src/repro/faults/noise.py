"""Heavy-tailed and composite noise models for fault injection.

The default simulator jitter is unit-mean lognormal — well-behaved enough
that the paper's CI-driven repetition always converges quickly.  Real
shared clusters are worse: tail latencies follow power laws, and most
repetitions are quiet while a few are catastrophic.  These models let the
chaos benchmarks exercise exactly the regime the paper's Huber regression
and adaptive repetition are meant to survive.

All models are unit-mean (costs stay unbiased, only the spread changes),
draw from a single seeded ``numpy`` PRNG, and satisfy the
:class:`~repro.sim.noise.NoiseModel` interface, so they drop into
:class:`~repro.sim.network.Fabric` unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import HeavyTailSpec
from repro.sim.noise import LognormalNoise, NoiseModel, NoNoise

#: Mixed into noise seeds so fault noise streams never collide with the
#: base lognormal stream seeded with the raw measurement seed.
_NOISE_STREAM = 0x9E3779B1


class ParetoNoise(NoiseModel):
    """Unit-mean Pareto factors: power-law tail with shape ``tail_index``.

    The scale is ``(a - 1) / a`` so that ``E[factor] == 1``; factors are
    bounded below by the scale (never zero) and unbounded above, with tail
    exponent ``a``.  ``a`` close to 1 is pathological; ``a >= 2.5`` is a
    plausible "busy shared switch" profile.
    """

    def __init__(self, tail_index: float = 2.5, seed: int = 0):
        if tail_index <= 1.0:
            raise ValueError(f"tail_index must be > 1, got {tail_index}")
        self.tail_index = tail_index
        self.seed = seed
        self._scale = (tail_index - 1.0) / tail_index
        self._rng = np.random.default_rng((seed, _NOISE_STREAM, 1))

    def factor(self) -> float:
        return float(self._scale * (1.0 + self._rng.pareto(self.tail_index)))

    def reseed(self, seed: int) -> None:
        self.seed = seed
        self._rng = np.random.default_rng((seed, _NOISE_STREAM, 1))

    def __repr__(self) -> str:
        return f"ParetoNoise(tail_index={self.tail_index}, seed={self.seed})"


class MixtureNoise(NoiseModel):
    """Lognormal base with rare Pareto spikes (unit mean overall).

    With probability ``1 - p`` a factor is a unit-mean lognormal draw; with
    probability ``p`` it is additionally multiplied by a Pareto spike of
    mean ``spike_scale``.  The whole mixture is rescaled by
    ``1 / (1 - p + p * spike_scale)`` so its mean stays exactly 1.
    """

    def __init__(
        self,
        sigma: float = 0.02,
        spike_probability: float = 0.01,
        spike_scale: float = 5.0,
        tail_index: float = 2.5,
        seed: int = 0,
    ):
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if not 0.0 <= spike_probability <= 1.0:
            raise ValueError(f"spike_probability must be in [0, 1], got {spike_probability}")
        if spike_scale < 1.0:
            raise ValueError(f"spike_scale must be >= 1, got {spike_scale}")
        if tail_index <= 1.0:
            raise ValueError(f"tail_index must be > 1, got {tail_index}")
        self.sigma = sigma
        self.spike_probability = spike_probability
        self.spike_scale = spike_scale
        self.tail_index = tail_index
        self.seed = seed
        self._mu = -0.5 * sigma * sigma
        self._pareto_scale = (tail_index - 1.0) / tail_index
        self._norm = 1.0 / (1.0 - spike_probability + spike_probability * spike_scale)
        self._rng = np.random.default_rng((seed, _NOISE_STREAM, 2))

    def factor(self) -> float:
        rng = self._rng
        base = float(np.exp(self._mu + self.sigma * rng.standard_normal()))
        if rng.random() < self.spike_probability:
            spike = self.spike_scale * self._pareto_scale * (
                1.0 + float(rng.pareto(self.tail_index))
            )
            base *= spike
        return base * self._norm

    def reseed(self, seed: int) -> None:
        self.seed = seed
        self._rng = np.random.default_rng((seed, _NOISE_STREAM, 2))

    def __repr__(self) -> str:
        return (
            f"MixtureNoise(sigma={self.sigma}, "
            f"spike_probability={self.spike_probability}, "
            f"spike_scale={self.spike_scale}, seed={self.seed})"
        )


class CompositeNoise(NoiseModel):
    """Product of independent component factors.

    Used when a fault plan adds heavy-tailed noise *on top of* a cluster's
    configured lognormal jitter: each cost draws one factor from every
    component, and the factors multiply.  The composite mean is the product
    of component means (1 when every component is unit-mean).
    """

    def __init__(self, components: tuple[NoiseModel, ...]):
        if not components:
            raise ValueError("CompositeNoise needs at least one component")
        self.components = tuple(components)

    def factor(self) -> float:
        value = 1.0
        for component in self.components:
            value *= component.factor()
        return value

    def reseed(self, seed: int) -> None:
        for index, component in enumerate(self.components):
            component.reseed(seed + 1_000_003 * (index + 1))

    def __repr__(self) -> str:
        return f"CompositeNoise({self.components!r})"


def make_fault_noise(spec: HeavyTailSpec, seed: int) -> NoiseModel:
    """Instantiate the noise model a :class:`HeavyTailSpec` describes."""
    if spec.kind == "pareto":
        return ParetoNoise(tail_index=spec.tail_index, seed=seed)
    return MixtureNoise(
        sigma=spec.sigma,
        spike_probability=spec.spike_probability,
        spike_scale=spec.spike_scale,
        tail_index=spec.tail_index,
        seed=seed,
    )


def compose_noise(
    sigma: float, spec: HeavyTailSpec | None, seed: int
) -> NoiseModel:
    """The fabric noise model for a cluster sigma plus an optional plan spec.

    Mirrors ``ClusterSpec.make_world``'s base rule (lognormal when
    ``sigma > 0``, else none) and layers the heavy-tail model on top when
    the plan asks for one.
    """
    components: list[NoiseModel] = []
    if sigma > 0:
        components.append(LognormalNoise(sigma=sigma, seed=seed))
    if spec is not None:
        components.append(make_fault_noise(spec, seed))
    if not components:
        return NoNoise()
    if len(components) == 1:
        return components[0]
    return CompositeNoise(tuple(components))
