"""Deeper MPI semantics tests: protocol boundaries, wildcards, statuses."""

import pytest

from repro.errors import MpiError
from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.mpi.communicator import MpiWorld
from repro.sim.engine import Simulator
from repro.sim.network import Fabric, NetworkParams

PARAMS = NetworkParams(
    latency=10e-6,
    byte_time_out=1e-9,
    byte_time_in=1e-9,
    per_message_overhead=1e-6,
    send_overhead=0.5e-6,
    recv_overhead=0.5e-6,
    eager_limit=4096,
    control_latency=8e-6,
    shm_latency=0.5e-6,
    shm_byte_time=0.05e-9,
)


def make_world(procs=4):
    fabric = Fabric(params=PARAMS, num_nodes=procs)
    return MpiWorld(Simulator(), fabric, list(range(procs)))


def run(world, program):
    processes = world.run(program)
    return [p.value for p in processes]


class TestEagerBoundary:
    def test_exactly_at_limit_is_eager(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, PARAMS.eager_limit, tag=1)
                return comm.now
            yield comm.sim.timeout(0.1)  # receiver is late
            yield from comm.recv(0, tag=1)
            return comm.now

        send_done, _ = run(world, body)
        assert send_done < 0.1  # completed locally before the recv existed

    def test_one_byte_over_limit_is_rendezvous(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, PARAMS.eager_limit + 1, tag=1)
                return comm.now
            yield comm.sim.timeout(0.1)
            yield from comm.recv(0, tag=1)
            return comm.now

        send_done, _ = run(world, body)
        assert send_done > 0.1  # waited for the handshake


class TestWildcards:
    def test_any_tag_receives_lowest_arrival_first(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, 10, tag=42)
                yield from comm.send(1, 20, tag=7)
                return None
            first = yield from comm.recv(0, tag=ANY_TAG)
            second = yield from comm.recv(0, tag=ANY_TAG)
            return (first.tag, second.tag)

        assert run(world, body)[1] == (42, 7)  # arrival order, not tag order

    def test_any_source_any_tag_together(self):
        world = make_world(3)

        def body(comm):
            if comm.rank == 0:
                statuses = []
                for _ in range(2):
                    status = yield from comm.recv(ANY_SOURCE, tag=ANY_TAG)
                    statuses.append((status.source, status.nbytes))
                return sorted(statuses)
            yield from comm.send(0, 100 * comm.rank, tag=comm.rank)
            return None

        assert run(world, body)[0] == [(1, 100), (2, 200)]

    def test_rendezvous_matches_any_source_recv(self):
        world = make_world(2)
        big = PARAMS.eager_limit * 4

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, big, tag=5)
                return None
            status = yield from comm.recv(ANY_SOURCE, tag=5)
            return (status.source, status.nbytes)

        assert run(world, body)[1] == (0, big)


class TestStatuses:
    def test_waitall_statuses_in_request_order(self):
        world = make_world(3)

        def body(comm):
            if comm.rank == 0:
                slow = yield from comm.irecv(1, tag=1)
                fast = yield from comm.irecv(2, tag=2)
                statuses = yield from comm.waitall([slow, fast])
                return [(s.source, s.tag) for s in statuses]
            delay = 0.2 if comm.rank == 1 else 0.0
            yield comm.sim.timeout(delay)
            yield from comm.send(0, 8, tag=comm.rank)
            return None

        # Order follows the request list, not completion time.
        assert run(world, body)[0] == [(1, 1), (2, 2)]

    def test_send_status_names_destination(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                status = yield from comm.send(1, 64, tag=9)
                return status.source
            yield from comm.recv(0, tag=9)
            return None

        assert run(world, body)[0] == 1

    def test_request_repr_mentions_state(self):
        world = make_world(2)
        seen = {}

        def body(comm):
            if comm.rank == 0:
                request = yield from comm.isend(1, 16, tag=3)
                seen["pending"] = repr(request)
                yield from comm.wait(request)
                seen["done"] = repr(request)
            else:
                yield from comm.recv(0, tag=3)

        world.run(body)
        assert "send" in seen["pending"]
        assert "done" in seen["done"]


class TestValidation:
    def test_negative_size_send_rejected(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, -5)
            return None

        processes = world.spawn(body)
        world.sim.run()
        with pytest.raises(MpiError, match="negative"):
            _ = processes[0].value

    def test_irecv_source_bounds_checked(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.irecv(9)
            return None

        processes = world.spawn(body)
        world.sim.run()
        with pytest.raises(MpiError):
            _ = processes[0].value


class TestManyOutstandingRequests:
    def test_hundred_concurrent_isends_complete(self):
        world = make_world(2)
        count = 100

        def body(comm):
            if comm.rank == 0:
                requests = []
                for index in range(count):
                    request = yield from comm.isend(1, 512, tag=index)
                    requests.append(request)
                yield from comm.waitall(requests)
                return comm.now
            requests = []
            for index in range(count):
                request = yield from comm.irecv(0, tag=index)
                requests.append(request)
            yield from comm.waitall(requests)
            return comm.now

        send_done, recv_done = run(world, body)
        assert recv_done >= send_done
        assert world.quiescent()
