"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.estimation.regression import huber_fit, ols_fit
from repro.mpi.segmentation import plan_segments
from repro.models.base import segment_count
from repro.models.derived import DERIVED_BCAST_MODELS
from repro.models.gamma import GammaFunction
from repro.models.hockney import HockneyParams
from repro.selection.decision_table import DecisionTable
from repro.selection.oracle import Selection
from repro.topology import (
    build_binary_tree,
    build_binomial_tree,
    build_chain_tree,
    build_kary_tree,
)

sizes = st.integers(min_value=1, max_value=300)
roots = st.integers(min_value=0, max_value=1_000_000)


class TestSegmentationProperties:
    # Cap totals so tiny segment sizes cannot create multi-million-entry
    # plans (hypothesis deadline); real use is <= 512 segments.
    @given(total=st.integers(0, 1 << 20), seg=st.integers(0, 1 << 16))
    def test_sizes_sum_to_total(self, total, seg):
        plan = plan_segments(total, seg)
        assert sum(plan.sizes) == total

    @given(total=st.integers(1, 1 << 20), seg=st.integers(1, 1 << 16))
    def test_all_but_last_equal_segment_size(self, total, seg):
        plan = plan_segments(total, seg)
        if plan.num_segments > 1:
            assert all(s == seg for s in plan.sizes[:-1])
            assert 0 < plan.sizes[-1] <= seg

    @given(total=st.integers(1, 1 << 20), seg=st.integers(1, 1 << 16))
    def test_segment_count_consistent_with_plan(self, total, seg):
        assert segment_count(total, seg) == plan_segments(total, seg).num_segments


class TestTopologyProperties:
    @given(size=sizes, root_seed=roots)
    @settings(max_examples=60)
    def test_binomial_tree_always_valid(self, size, root_seed):
        build_binomial_tree(size, root_seed % size).validate()

    @given(size=sizes, root_seed=roots, fanout=st.integers(1, 5))
    @settings(max_examples=60)
    def test_kary_tree_always_valid(self, size, root_seed, fanout):
        build_kary_tree(fanout, size, root_seed % size).validate()

    @given(size=sizes, root_seed=roots, chains=st.integers(1, 6))
    @settings(max_examples=60)
    def test_chain_tree_always_valid(self, size, root_seed, chains):
        build_chain_tree(size, root_seed % size, chains).validate()

    @given(size=st.integers(2, 300))
    @settings(max_examples=40)
    def test_binomial_height_formula(self, size):
        tree = build_binomial_tree(size)
        assert tree.height == math.floor(math.log2(size))

    @given(size=st.integers(2, 300))
    @settings(max_examples=40)
    def test_binary_edges_count(self, size):
        tree = build_binary_tree(size)
        edges = sum(len(tree.children[r]) for r in range(size))
        assert edges == size - 1

    @given(size=st.integers(2, 200), root_seed=roots)
    @settings(max_examples=40)
    def test_chain_tree_is_hamiltonian_path(self, size, root_seed):
        tree = build_chain_tree(size, root_seed % size, chains=1)
        assert tree.height == size - 1
        assert tree.max_fanout() == 1


class TestGammaProperties:
    @given(
        table=st.dictionaries(
            st.integers(3, 12),
            st.floats(1.0, 5.0, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
        procs=st.integers(2, 500),
    )
    def test_gamma_at_least_one_everywhere(self, table, procs):
        gamma = GammaFunction(table)
        assert gamma(procs) >= 1.0

    @given(slope=st.floats(0.0, 0.5), procs=st.integers(8, 100))
    def test_linear_tables_extrapolate_linearly(self, slope, procs):
        # gamma(2) = 1 is always part of the fit, so the synthetic line
        # must pass through (2, 1): intercept = 1 - 2*slope.
        intercept = 1.0 - 2.0 * slope
        table = {p: intercept + slope * p for p in range(3, 8)}
        gamma = GammaFunction(table)
        expected = max(1.0, intercept + slope * procs)
        assert abs(gamma(procs) - expected) < 1e-6 + 1e-6 * expected


class TestModelProperties:
    @given(
        name=st.sampled_from(sorted(DERIVED_BCAST_MODELS)),
        procs=st.integers(2, 256),
        nbytes=st.integers(1, 10**7),
        alpha=st.floats(1e-7, 1e-3),
        beta=st.floats(1e-11, 1e-7),
    )
    @settings(max_examples=120)
    def test_predictions_positive_and_finite(self, name, procs, nbytes, alpha, beta):
        gamma = GammaFunction({3: 1.1, 5: 1.3, 7: 1.5})
        model = DERIVED_BCAST_MODELS[name](gamma)
        predicted = model.predict(procs, nbytes, 8192, HockneyParams(alpha, beta))
        assert predicted > 0
        assert math.isfinite(predicted)

    @given(
        name=st.sampled_from(sorted(DERIVED_BCAST_MODELS)),
        procs=st.integers(2, 128),
        nbytes=st.integers(1, 10**7),
    )
    @settings(max_examples=80)
    def test_coefficients_scale_linearly_in_params(self, name, procs, nbytes):
        """T is linear in (alpha, beta): doubling both doubles T."""
        gamma = GammaFunction({3: 1.1, 7: 1.5})
        model = DERIVED_BCAST_MODELS[name](gamma)
        base = model.predict(procs, nbytes, 8192, HockneyParams(1e-5, 1e-9))
        double = model.predict(procs, nbytes, 8192, HockneyParams(2e-5, 2e-9))
        assert abs(double - 2 * base) < 1e-12 + 1e-9 * base


class TestRegressionProperties:
    @given(
        intercept=st.floats(-10, 10),
        slope=st.floats(-5, 5),
        xs=st.lists(
            st.floats(0, 100, allow_nan=False), min_size=3, max_size=20, unique=True
        ),
    )
    @settings(max_examples=60)
    def test_ols_recovers_exact_lines(self, intercept, slope, xs):
        assume(max(xs) - min(xs) > 1e-3)  # slope must be identifiable
        ys = [intercept + slope * x for x in xs]
        fit = ols_fit(xs, ys)
        assert abs(fit.intercept - intercept) < 1e-6 + 1e-6 * abs(intercept)
        assert abs(fit.slope - slope) < 1e-6 + 1e-6 * abs(slope)

    @given(
        intercept=st.floats(-10, 10),
        slope=st.floats(-5, 5),
        xs=st.lists(
            st.floats(0, 100, allow_nan=False), min_size=4, max_size=20, unique=True
        ),
    )
    @settings(max_examples=60)
    def test_huber_recovers_exact_lines(self, intercept, slope, xs):
        assume(max(xs) - min(xs) > 1e-3)  # slope must be identifiable
        ys = [intercept + slope * x for x in xs]
        fit = huber_fit(xs, ys)
        assert abs(fit.intercept - intercept) < 1e-5 + 1e-5 * abs(intercept)
        assert abs(fit.slope - slope) < 1e-5 + 1e-5 * abs(slope)


class TestDecisionTableProperties:
    @given(
        procs=st.lists(st.integers(2, 200), min_size=1, max_size=6, unique=True),
        sizes_grid=st.lists(
            st.integers(1024, 10**7), min_size=1, max_size=6, unique=True
        ),
        query_procs=st.integers(1, 300),
        query_size=st.integers(1, 2 * 10**7),
    )
    @settings(max_examples=80)
    def test_lookup_always_returns_grid_choice(
        self, procs, sizes_grid, query_procs, query_size
    ):
        procs = sorted(procs)
        sizes_grid = sorted(sizes_grid)
        choices = tuple(
            tuple(Selection("binary", 8192) for _ in sizes_grid) for _ in procs
        )
        table = DecisionTable(tuple(procs), tuple(sizes_grid), choices)
        assert table.select(query_procs, query_size) == Selection("binary", 8192)
