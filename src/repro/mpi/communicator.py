"""The simulated MPI world and rank-bound communicators.

An :class:`MpiWorld` ties together a :class:`~repro.sim.engine.Simulator`,
a :class:`~repro.sim.network.Fabric` and a rank→node mapping.  Each rank's
program is a generator function receiving a rank-bound :class:`Communicator`
whose point-to-point calls are sub-generators (``yield from``).

Protocol semantics (mirroring Open MPI over a TCP BTL):

* **eager** sends (size ≤ ``eager_limit``): the payload starts injecting
  immediately; the send request completes at *local* completion (last byte
  injected), possibly before the receiver has even posted a receive;
* **rendezvous** sends: a ready-to-send notice travels to the receiver, the
  payload only moves after the notice matches a posted receive and a
  clear-to-send returns to the sender; the send request completes at
  injection end, the receive at delivery.

Per-call CPU costs: every ``isend`` charges ``send_overhead`` to the calling
rank before returning; every matched message adds ``recv_overhead`` between
payload delivery and receive completion.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

from repro.errors import MpiError
from repro.mpi.matching import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    MatchingEngine,
    PostedRecv,
    RtsNotice,
)
from repro.mpi.requests import Request, Status
from repro.sim.engine import Future, Process, SimGen, Simulator
from repro.sim.network import Fabric
from repro.sim.trace import NULL_TRACER, Tracer

#: Type of a rank program: ``def body(comm): yield ...``.
RankProgram = Callable[["Communicator"], SimGen]


class MpiWorld:
    """All simulated ranks plus the fabric they communicate over."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        rank_to_node: Sequence[int],
        tracer: Tracer = NULL_TRACER,
        rank_to_port: Sequence[int] | None = None,
        compute_factor: Sequence[float] | None = None,
        node_to_rack: Sequence[int] | None = None,
    ):
        if not rank_to_node:
            raise MpiError("world needs at least one rank")
        for node in rank_to_node:
            if not 0 <= node < fabric.num_nodes:
                raise MpiError(f"rank mapped to unknown node {node}")
        self.sim = sim
        self.fabric = fabric
        self.rank_to_node = list(rank_to_node)
        if rank_to_port is None:
            rank_to_port = [0] * len(self.rank_to_node)
        if len(rank_to_port) != len(self.rank_to_node):
            raise MpiError("rank_to_port length must match rank_to_node")
        for rank, port in enumerate(rank_to_port):
            if not 0 <= port < fabric.ports_per_node:
                raise MpiError(f"rank {rank} mapped to unknown NIC port {port}")
        self.rank_to_port = list(rank_to_port)
        if compute_factor is not None:
            if len(compute_factor) != len(self.rank_to_node):
                raise MpiError("compute_factor length must match rank_to_node")
            for rank, factor in enumerate(compute_factor):
                if factor < 1.0:
                    raise MpiError(
                        f"compute factor must be >= 1, got {factor} for rank {rank}"
                    )
            compute_factor = list(compute_factor)
        #: Per-rank CPU slowdown (straggler hosts); ``None`` — the default —
        #: keeps every per-call cost exactly as configured.
        self.compute_factor = compute_factor
        if node_to_rack is not None:
            if len(node_to_rack) < fabric.num_nodes:
                raise MpiError("node_to_rack must cover every fabric node")
            node_to_rack = list(node_to_rack)
        #: Node→rack map of a multi-level fabric (``None`` on flat
        #: fabrics); hierarchical collectives group ranks by it.
        self.node_to_rack = node_to_rack
        self.tracer = tracer
        self.size = len(rank_to_node)
        self.engines = [MatchingEngine() for _ in range(self.size)]
        self._next_cid = 0
        self._world_group = tuple(range(self.size))

    # -- communicator construction ----------------------------------------

    def _allocate_cid(self) -> int:
        cid = self._next_cid
        self._next_cid += 1
        return cid

    def comm_world(self, rank: int) -> "Communicator":
        """The world communicator handle bound to ``rank``.

        All handles returned by this method share context id 0.
        """
        if self._next_cid == 0:
            self._allocate_cid()
        return Communicator(self, cid=0, group=self._world_group, rank=rank)

    def subgroup_comm(self, group: Sequence[int]) -> list["Communicator"]:
        """Create a communicator over ``group`` (world ranks); one handle per member.

        This plays the role of ``MPI_Comm_create``; since this is a
        simulator, creation is immediate rather than collective.
        """
        group = tuple(group)
        if len(set(group)) != len(group):
            raise MpiError(f"duplicate ranks in group {group}")
        for world_rank in group:
            if not 0 <= world_rank < self.size:
                raise MpiError(f"rank {world_rank} outside world")
        cid = self._allocate_cid()
        return [
            Communicator(self, cid=cid, group=group, rank=i)
            for i in range(len(group))
        ]

    # -- program execution -------------------------------------------------

    def spawn(self, program: RankProgram, ranks: Sequence[int] | None = None) -> list[Process]:
        """Spawn ``program(comm)`` as one coroutine per rank.

        Returns the processes; run the world's simulator to execute them.
        """
        if ranks is None:
            ranks = range(self.size)
        return [
            self.sim.process(program(self.comm_world(r)), name=f"rank-{r}")
            for r in ranks
        ]

    def run(self, program: RankProgram) -> list[Process]:
        """Spawn ``program`` on every rank and run the simulation to the end."""
        processes = self.spawn(program)
        self.sim.run()
        return processes

    # -- point-to-point internals -------------------------------------------

    def _start_send(
        self,
        cid: int,
        group: tuple[int, ...],
        src_local: int,
        dst_local: int,
        nbytes: int,
        tag: int,
        request: Request,
    ) -> None:
        sim = self.sim
        fabric = self.fabric
        src_world = group[src_local]
        dst_world = group[dst_local]
        src_node = self.rank_to_node[src_world]
        dst_node = self.rank_to_node[dst_world]
        src_port = self.rank_to_port[src_world]
        dst_port = self.rank_to_port[dst_world]
        engine = self.engines[dst_world]
        send_status = Status(source=dst_local, tag=tag, nbytes=nbytes)
        tracer = self.tracer
        tracer.record(sim.now, "send_post", src_world, dst_world, tag, nbytes)

        def complete_send() -> None:
            tracer.record(sim.now, "send_complete", src_world, dst_world, tag, nbytes)
            request.succeed(send_status)

        if nbytes <= fabric.params.eager_limit:
            timing = fabric.transfer(
                src_node, dst_node, nbytes, sim.now, src_port, dst_port
            )
            sim._schedule_at(timing.inject_end, complete_send)
            envelope = Envelope(cid, src_local, tag, nbytes, timing.deliver)
            sim._schedule_at(
                timing.deliver, lambda: engine.arrive(envelope, timing.deliver)
            )
            return

        # Rendezvous: RTS -> match -> CTS -> payload.
        def grant(match_time: float, recv_done: Callable[[float], None]) -> None:
            cts_at_sender = fabric.control_transfer(dst_node, src_node, match_time)

            def start_payload() -> None:
                timing = fabric.transfer(
                    src_node, dst_node, nbytes, sim.now, src_port, dst_port
                )
                sim._schedule_at(timing.inject_end, complete_send)
                recv_done(timing.deliver)

            sim._schedule_at(cts_at_sender, start_payload)

        notice = RtsNotice(cid, src_local, tag, nbytes, grant)
        rts_arrival = fabric.control_transfer(src_node, dst_node, sim.now)
        sim._schedule_at(rts_arrival, lambda: engine.arrive(notice, rts_arrival))

    def _post_recv(
        self,
        cid: int,
        group: tuple[int, ...],
        dst_local: int,
        src_local: int,
        tag: int,
        request: Request,
    ) -> None:
        sim = self.sim
        dst_world = group[dst_local]
        recv_overhead = self.fabric.params.recv_overhead
        tracer = self.tracer
        tracer.record(sim.now, "recv_post", dst_world, src_local, tag, -1)

        def finish(status: Status) -> Callable[[], None]:
            def _done() -> None:
                tracer.record(
                    sim.now, "recv_complete", dst_world, status.source,
                    status.tag, status.nbytes,
                )
                request.succeed(status)

            return _done

        def on_match(message: Envelope | RtsNotice, match_time: float) -> None:
            status = Status(source=message.src, tag=message.tag, nbytes=message.nbytes)
            if isinstance(message, Envelope):
                sim._schedule_at(match_time + recv_overhead, finish(status))
            else:
                message.grant(
                    match_time,
                    lambda deliver: sim._schedule_at(
                        deliver + recv_overhead, finish(status)
                    ),
                )

        self.engines[dst_world].post(
            PostedRecv(cid, src_local, tag, on_match), sim.now
        )

    def quiescent(self) -> bool:
        """True when no unmatched receives or messages remain anywhere."""
        return all(engine.idle() for engine in self.engines)


class Communicator:
    """A communicator handle bound to one rank (its caller)."""

    __slots__ = ("world", "cid", "group", "rank")

    def __init__(self, world: MpiWorld, cid: int, group: tuple[int, ...], rank: int):
        self.world = world
        self.cid = cid
        self.group = group
        self.rank = rank

    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return len(self.group)

    @property
    def sim(self) -> Simulator:
        """The underlying simulator (for ``comm.sim.now`` timestamps)."""
        return self.world.sim

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.world.sim.now

    def _check_peer(self, peer: int, wildcard_ok: bool) -> None:
        if wildcard_ok and peer == ANY_SOURCE:
            return
        if not 0 <= peer < len(self.group):
            raise MpiError(
                f"peer rank {peer} outside communicator of size {len(self.group)}"
            )

    # -- non-blocking point-to-point ---------------------------------------

    def isend(
        self, dest: int, nbytes: int, tag: int = 0
    ) -> Generator[Future, Any, Request]:
        """Start a standard-mode non-blocking send; returns the request.

        Charges the caller ``send_overhead`` of CPU time, so back-to-back
        ``isend`` calls serialise on the calling rank, exactly the effect the
        paper's γ(P) parameter captures for the linear-tree broadcast.
        """
        self._check_peer(dest, wildcard_ok=False)
        if dest == self.rank:
            raise MpiError("send to self would deadlock the rank coroutine")
        if nbytes < 0:
            raise MpiError(f"negative message size {nbytes}")
        world = self.world
        overhead = world.fabric.params.send_overhead
        if world.compute_factor is not None:
            overhead *= world.compute_factor[self.group[self.rank]]
        yield world.sim.timeout(overhead)
        request = Request(world.sim, "send", self.rank, dest, tag, nbytes)
        world._start_send(self.cid, self.group, self.rank, dest, nbytes, tag, request)
        return request

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, nbytes: int | None = None
    ) -> Generator[Future, Any, Request]:
        """Post a non-blocking receive; returns the request.

        ``nbytes`` is informational (the matched message determines the
        size); posting is free of simulated CPU time, like a real
        ``MPI_Irecv`` pre-posted buffer.
        """
        self._check_peer(source, wildcard_ok=True)
        world = self.world
        request = Request(
            world.sim, "recv", self.rank, source, tag, -1 if nbytes is None else nbytes
        )
        world._post_recv(self.cid, self.group, self.rank, source, tag, request)
        return request
        yield  # pragma: no cover - makes this function a generator

    # -- completion ----------------------------------------------------------

    def wait(self, request: Request) -> Generator[Future, Any, Status]:
        """Block until ``request`` completes; returns its :class:`Status`."""
        status = yield request
        return status

    def waitall(
        self, requests: Sequence[Request]
    ) -> Generator[Future, Any, list[Status]]:
        """Block until every request completes; returns statuses in order."""
        statuses = yield self.world.sim.all_of(list(requests))
        return statuses

    def waitany(
        self, requests: Sequence[Request]
    ) -> Generator[Future, Any, tuple[int, Status]]:
        """Block until one request completes; returns ``(index, status)``."""
        result = yield self.world.sim.any_of(list(requests))
        return result

    # -- blocking convenience --------------------------------------------------

    def send(
        self, dest: int, nbytes: int, tag: int = 0
    ) -> Generator[Future, Any, Status]:
        """Blocking standard-mode send (``isend`` + ``wait``)."""
        request = yield from self.isend(dest, nbytes, tag)
        status = yield from self.wait(request)
        return status

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Future, Any, Status]:
        """Blocking receive (``irecv`` + ``wait``)."""
        request = yield from self.irecv(source, tag)
        status = yield from self.wait(request)
        return status

    def sendrecv(
        self,
        dest: int,
        nbytes: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator[Future, Any, Status]:
        """Simultaneous send and receive (deadlock-free exchange)."""
        recv_request = yield from self.irecv(source, recvtag)
        send_request = yield from self.isend(dest, nbytes, sendtag)
        statuses = yield from self.waitall([send_request, recv_request])
        return statuses[1]

    def compute(self, seconds: float) -> Generator[Future, Any, None]:
        """Occupy the calling rank for ``seconds`` of local computation.

        Used by reduction collectives to charge per-byte operator cost.
        """
        factors = self.world.compute_factor
        if factors is not None:
            seconds *= factors[self.group[self.rank]]
        if seconds > 0:
            yield self.world.sim.timeout(seconds)
