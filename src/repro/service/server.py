"""The online algorithm-selection server.

Three pieces, separable for testing:

* :class:`SelectionService` — transport-independent query engine: input
  validation, decision tables compiled to flat arrays with pre-rendered
  response fragments (:class:`_CompiledOp`), an LRU cache on the
  single-query path, metrics, and hot reload of the artifact registry;
* :class:`HttpServer` — a stdlib-only asyncio HTTP/1.1 front end built
  on :class:`asyncio.Protocol` (no per-request task or coroutine: the
  hot path is pure CPU, so a request is parsed, dispatched and written
  inside ``data_received``), with keep-alive and pipelining, bounded
  bodies, typed JSON error responses, an idle-watchdog read timeout and
  graceful drain;
* :class:`ServiceThread` — runs an :class:`HttpServer` on a private
  event loop in a background thread, for tests and the load harness.

Endpoints (reference in docs/SERVICE.md):

========  ============  =================================================
method    path          behaviour
========  ============  =================================================
POST      /select       one query object, or ``{"queries": [...]}``
GET       /artifacts    registry listing (ids, grids, load errors)
GET       /healthz      liveness + artifact count
GET       /metrics      Prometheus text format
POST      /reload       rescan the artifact directory (also ``SIGHUP``)
========  ============  =================================================

The hot path is bisect over flat parallel arrays plus pre-rendered JSON
fragments — no simulation, no model evaluation, no per-query dict walks
— so a query costs single-digit microseconds; the load harness
(``benchmarks/run_service_bench.py``) asserts p99 latency and that served
selections are bit-identical to offline ``DecisionTable.select``.  For
multi-core machines, :mod:`repro.service.shard` runs several processes
of this server behind one ``SO_REUSEPORT`` port.
"""

from __future__ import annotations

import asyncio
import errno
import json
import logging
import signal
import socket
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from pathlib import Path

from repro import obs
from repro.errors import ArtifactError, PortInUseError, ServiceError
from repro.service.artifact import ArtifactRegistry, SelectionArtifact
from repro.service.metrics import ServiceMetrics

_logger = logging.getLogger("repro.service")

#: Most queries allowed in one batched ``POST /select``.
MAX_BATCH = 4096

#: Largest accepted request body, in bytes.
MAX_BODY = 4 << 20

#: Largest accepted request head (request line + headers), in bytes.
MAX_HEADER = 32 << 10

#: Seconds a connection may sit idle (or dribble a request) before the
#: server closes it; bounds the damage of slow-loris style clients.
DEFAULT_READ_TIMEOUT = 30.0

#: Requests slower than this are logged with their trace id (the
#: slow-query log).  Generous for a µs-scale hot path: anything over it
#: means a reload, a huge batch, or trouble worth a log line.
DEFAULT_SLOW_REQUEST_SECONDS = 0.25

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class RequestError(ServiceError):
    """A client error with an HTTP status and a stable machine code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code

    def body(self) -> dict:
        return {"error": {"code": self.code, "message": str(self)}}


class LruCache:
    """Bounded query cache with hit/miss accounting."""

    def __init__(self, maxsize: int = 4096):
        self.maxsize = max(1, int(maxsize))
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


def _require_int(query: dict, name: str, minimum: int, index: int | None) -> int:
    where = "" if index is None else f" (query #{index})"
    value = query.get(name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(
            400, "validation",
            f"{name!r} must be an integer{where}, got {value!r}",
        )
    if value < minimum:
        raise RequestError(
            400, "validation", f"{name!r} must be >= {minimum}{where}, got {value}"
        )
    return value


#: The label key of an unlabelled counter sample, precomputed.
_NO_LABELS: tuple = ()


class _CompiledOp:
    """One (cluster, fabric, operation) compiled for the serving hot path.

    Everything that does not depend on ``(procs, nbytes)`` is rendered
    once per artifact load: a JSON *prefix* (cluster + operation), a
    per-grid-cell JSON *suffix* in plain and clamped variants (algorithm,
    segment size, artifact id, fabric, clamp marker), the result dict
    each cell corresponds to, and the precomputed metric label keys.
    Answering a query is then two bisects, one ``%``-format for the two
    integers, and one bytes concatenation.
    """

    __slots__ = (
        "cluster", "operation", "fabric",
        "proc_points", "size_points", "n_sizes", "min_procs", "min_size",
        "algorithm_ids", "segment_sizes", "algorithms",
        "prefix", "suffixes", "cell_results", "sel_keys", "clamp_key",
    )

    #: The two query integers are the only per-request variance in a
    #: result object; everything around them is pre-rendered.
    MID = b'"procs":%d,"nbytes":%d,'

    def __init__(
        self,
        cluster: str,
        operation: str,
        fabric: str,
        artifact: SelectionArtifact,
    ):
        flat = artifact.flat_tables()[operation]
        self.cluster = cluster
        self.operation = operation
        self.fabric = fabric
        self.proc_points = flat.proc_points
        self.size_points = flat.size_points
        self.n_sizes = flat.n_sizes
        self.min_procs = flat.min_procs
        self.min_size = flat.min_size
        self.algorithm_ids = flat.algorithm_ids
        self.segment_sizes = flat.segment_sizes
        self.algorithms = flat.algorithms
        self.prefix = (
            '{"cluster":%s,"operation":%s,'
            % (json.dumps(cluster), json.dumps(operation))
        ).encode("utf-8")
        artifact_json = json.dumps(artifact.artifact_id)
        fabric_tail = ',"fabric":%s' % json.dumps(fabric) if fabric else ""
        suffixes = []
        cell_results = []
        sel_keys = []
        for algorithm_id, segment in zip(flat.algorithm_ids, flat.segment_sizes):
            algorithm = flat.algorithms[algorithm_id]
            text = (
                '"algorithm":%s,"segment_size":%d,"artifact":%s%s'
                % (json.dumps(algorithm), segment, artifact_json, fabric_tail)
            )
            # Indexed by the clamped flag: [plain, clamped].
            suffixes.append(
                (text.encode("utf-8"),
                 (text + ',"clamped":true').encode("utf-8"))
            )
            base = {
                "algorithm": algorithm,
                "segment_size": segment,
                "artifact": artifact.artifact_id,
            }
            if fabric:
                base["fabric"] = fabric
            cell_results.append(base)
            # The exact key Counter.inc(operation=..., algorithm=...)
            # would build (label pairs sorted by name).
            sel_keys.append((("algorithm", algorithm), ("operation", operation)))
        self.suffixes = suffixes
        self.cell_results = cell_results
        self.sel_keys = sel_keys
        self.clamp_key = (("operation", operation),)

    def cell(self, procs: int, nbytes: int) -> tuple[int, bool]:
        """Row-major floor-cell index plus the below-grid clamp flag.

        Bit-identical to :meth:`DecisionTable.lookup` by construction
        (same ``bisect_right - 1`` floor, same clamp condition); the
        differential test in ``tests/test_flat_table.py`` holds the line.
        """
        i = bisect_right(self.proc_points, procs) - 1
        if i < 0:
            i = 0
        j = bisect_right(self.size_points, nbytes) - 1
        if j < 0:
            j = 0
        return (
            i * self.n_sizes + j,
            procs < self.min_procs or nbytes < self.min_size,
        )


class _CachedAnswer:
    """What the LRU stores per query key: the pre-rendered JSON fragment
    (everything but the closing brace and the per-request trace id), the
    result dict (handed out only as copies — a response-path annotation
    must never mutate cached state), and precomputed metric keys."""

    __slots__ = ("fragment", "result", "sel_key", "clamp_key")

    def __init__(self, fragment, result, sel_key, clamp_key):
        self.fragment = fragment
        self.result = result
        self.sel_key = sel_key
        self.clamp_key = clamp_key


class SelectionService:
    """Answers "(cluster, collective, P, m) → algorithm" queries."""

    def __init__(
        self,
        registry: ArtifactRegistry,
        *,
        cache_size: int = 4096,
        metrics: ServiceMetrics | None = None,
    ):
        self.registry = registry
        self.metrics = metrics or ServiceMetrics()
        self.cache = LruCache(cache_size)
        self.metrics.artifacts_loaded.set(len(registry))
        #: Why the service is serving last-known-good data, or ``None``
        #: while healthy.  Set by :meth:`reload` (and by a failed
        #: self-tuning recalibration), surfaced by /healthz.
        self.degraded_reason: str | None = None
        #: Optional :class:`~repro.tuning.drift.QuerySampler`: when set
        #: (by :meth:`SelfTuner.attach`), every N-th answered query emits
        #: a forced ``select.query`` span that the sampler captures for
        #: drift replay.  ``None`` keeps the hot path span-free.
        self.sampler = None
        #: The attached :class:`~repro.tuning.tuner.SelfTuner`, if any;
        #: surfaced as the ``tuning`` block of /healthz.
        self.tuner = None
        self._compiled: dict[tuple[str, str, str], _CompiledOp] = {}
        self._generation = registry.generation
        self._refresh_degraded()

    def _refresh_degraded(self) -> None:
        if self.registry.degraded:
            names = ", ".join(sorted(self.registry.degraded))
            self.degraded_reason = f"serving last-known-good for: {names}"
        else:
            self.degraded_reason = None
        self.metrics.degraded.set(1.0 if self.degraded_reason else 0.0)

    def invalidate(self) -> None:
        """Drop every answer cache and resync with the registry.

        Clears both the LRU and the compiled flat-table entries — they
        cache registry *content*, so any artifact swap obsoletes them
        together.
        """
        self._generation = self.registry.generation
        self.cache.clear()
        self._compiled.clear()

    def check_generation(self) -> None:
        """Invalidate caches if the registry content changed underneath us.

        The registry bumps :attr:`ArtifactRegistry.generation` on every
        reindex — ``rescan()``, ``add()`` — so this catches *every*
        artifact-swap path, including ones that bypass :meth:`reload`
        (a ``SelfTuner.recalibrate`` hot reload calls ``reload``, but a
        direct ``registry.rescan()`` would not): stale pre-swap
        selections can never be served from the LRU.
        """
        if self.registry.generation != self._generation:
            self.invalidate()

    def reload(self) -> dict:
        """Rescan the artifact directory and drop the query cache.

        Never raises: a reload that fails outright (the directory became
        unreadable mid-scan, say) leaves the previous registry state — and
        the query cache — untouched, flips the service into degraded mode,
        and counts a ``reload_failures``.  A rescan that *succeeds* but
        finds corrupted previously-served files likewise keeps serving
        their last-known-good versions (see :class:`ArtifactRegistry`)
        and reports degraded.  Either way in-flight and subsequent
        ``/select`` queries keep getting answers.
        """
        try:
            self.registry.rescan()
        except Exception as error:  # noqa: BLE001 — SIGHUP must not kill us
            self.metrics.reload_failures.inc()
            self.degraded_reason = f"reload failed: {error}"
            self.metrics.degraded.set(1.0)
        else:
            self.invalidate()
            self.metrics.reloads.inc()
            self.metrics.artifacts_loaded.set(len(self.registry))
            self._refresh_degraded()
        result = {
            "artifacts": len(self.registry),
            "errors": dict(self.registry.errors),
        }
        if self.degraded_reason is not None:
            result["status"] = "degraded"
            result["reason"] = self.degraded_reason
            result["degraded"] = dict(self.registry.degraded)
        return result

    def _validate(self, query, index: int | None = None) -> tuple:
        where = "" if index is None else f" (query #{index})"
        if not isinstance(query, dict):
            raise RequestError(
                400, "validation", f"each query must be a JSON object{where}"
            )
        cluster = query.get("cluster")
        if not isinstance(cluster, str) or not cluster:
            raise RequestError(
                400, "validation", f"'cluster' must be a non-empty string{where}"
            )
        operation = query.get("operation", "bcast")
        if not isinstance(operation, str) or not operation:
            raise RequestError(
                400, "validation", f"'operation' must be a non-empty string{where}"
            )
        fabric = query.get("fabric", "")
        if not isinstance(fabric, str):
            raise RequestError(
                400, "validation", f"'fabric' must be a string{where}"
            )
        procs = _require_int(query, "procs", 1, index)
        nbytes = _require_int(query, "nbytes", 0, index)
        return cluster, operation, fabric, procs, nbytes

    def _compiled_for(self, cluster, operation, fabric) -> _CompiledOp:
        key = (cluster, fabric, operation)
        op = self._compiled.get(key)
        if op is None:
            try:
                artifact = self.registry.lookup(cluster, operation, fabric)
            except ArtifactError as error:
                raise RequestError(404, "unknown_artifact", str(error)) from None
            op = _CompiledOp(cluster, operation, fabric, artifact)
            self._compiled[key] = op
        return op

    def _emit_sample(self, result: dict) -> None:
        # Forced span: exists (and runs the recorder's finish hooks,
        # where the sampler listens) even while tracing is off.  The
        # span carries the full served decision so the self-tuning
        # loop can replay it against a measured oracle later, off the
        # request path.
        with obs.span(
            "select.query",
            force=True,
            cluster=result["cluster"],
            operation=result["operation"],
            fabric=result.get("fabric", ""),
            procs=result["procs"],
            nbytes=result["nbytes"],
            algorithm=result["algorithm"],
            segment_size=result["segment_size"],
        ):
            pass

    def _answer(self, query, index: int | None = None) -> _CachedAnswer:
        """The single-query (LRU-cached) path; callers must have run
        :meth:`check_generation` this request."""
        key = self._validate(query, index)
        metrics = self.metrics
        metrics.queries.inc_key(_NO_LABELS)
        entry = self.cache.get(key)
        if entry is not None:
            metrics.cache_hits.inc_key(_NO_LABELS)
        else:
            metrics.cache_misses.inc_key(_NO_LABELS)
            cluster, operation, fabric, procs, nbytes = key
            op = self._compiled_for(cluster, operation, fabric)
            k, clamped = op.cell(procs, nbytes)
            fragment = (
                op.prefix + _CompiledOp.MID % (procs, nbytes)
                + op.suffixes[k][clamped]
            )
            result = {
                "cluster": cluster,
                "operation": operation,
                "procs": procs,
                "nbytes": nbytes,
            }
            result.update(op.cell_results[k])
            if clamped:
                # Below-grid queries clamp to the first grid cell; say so
                # instead of presenting the extrapolation as a grid answer.
                result["clamped"] = True
            entry = _CachedAnswer(
                fragment, result, op.sel_keys[k],
                op.clamp_key if clamped else None,
            )
            self.cache.put(key, entry)
        if entry.clamp_key is not None:
            metrics.clamped.inc_key(entry.clamp_key)
        metrics.selections.inc_key(entry.sel_key)
        sampler = self.sampler
        if sampler is not None and sampler.should_sample():
            self._emit_sample(entry.result)
        return entry

    def select_one(self, query, index: int | None = None) -> dict:
        """Validate and answer a single query (LRU-cached).

        Returns a *fresh* dict every call: the cached answer stays
        private to the cache, so no response-path annotation (trace ids,
        client-side mutation) can ever corrupt cached state.
        """
        self.check_generation()
        return dict(self._answer(query, index).result)

    def _batch_fragments(self, queries: list) -> list[bytes]:
        """Answer a batch as pre-rendered JSON fragments, one pass.

        This is the vectorized path: no LRU probes, no result dicts —
        per query it is validation, two bisects into the flat arrays and
        one bytes concatenation.  The compiled table is re-resolved only
        when the (cluster, fabric, operation) triple changes between
        consecutive queries, which for real batches is almost never.
        """
        metrics = self.metrics
        selections_inc = metrics.selections.inc_key
        clamped_counter = metrics.clamped
        sampler = self.sampler
        validate = self._validate
        bisect = bisect_right
        mid = _CompiledOp.MID
        fragments: list[bytes] = []
        append = fragments.append
        last_triple = None
        op = None
        # Rebound whenever the (cluster, fabric, operation) triple
        # changes; hoisted out of the per-query work because real
        # batches almost never switch tables mid-batch.
        proc_points = size_points = suffixes = sel_keys = None
        n_sizes = min_procs = min_size = 0
        prefix = b""
        clamp_key: tuple = ()
        for index, query in enumerate(queries):
            cluster, operation, fabric, procs, nbytes = validate(query, index)
            triple = (cluster, fabric, operation)
            if triple != last_triple:
                op = self._compiled_for(cluster, operation, fabric)
                last_triple = triple
                proc_points = op.proc_points
                size_points = op.size_points
                n_sizes = op.n_sizes
                min_procs = op.min_procs
                min_size = op.min_size
                prefix = op.prefix
                suffixes = op.suffixes
                sel_keys = op.sel_keys
                clamp_key = op.clamp_key
            # _CompiledOp.cell, inlined: the call and result-tuple
            # overhead is measurable at 10^5 queries/s.
            i = bisect(proc_points, procs) - 1
            if i < 0:
                i = 0
            j = bisect(size_points, nbytes) - 1
            if j < 0:
                j = 0
            k = i * n_sizes + j
            clamped = procs < min_procs or nbytes < min_size
            append(prefix + mid % (procs, nbytes) + suffixes[k][clamped])
            selections_inc(sel_keys[k])
            if clamped:
                clamped_counter.inc_key(clamp_key)
            if sampler is not None and sampler.should_sample():
                self._emit_sample({
                    "cluster": cluster,
                    "operation": operation,
                    "fabric": fabric,
                    "procs": procs,
                    "nbytes": nbytes,
                    "algorithm": op.algorithms[op.algorithm_ids[k]],
                    "segment_size": op.segment_sizes[k],
                })
        metrics.queries.inc(float(len(fragments)))
        metrics.batch_queries.inc(float(len(fragments)))
        return fragments

    def select_body(self, payload, trace_id: str) -> bytes:
        """Render the complete ``POST /select`` 200 response body.

        The HTTP fast path: single queries splice the per-request trace
        id onto the (possibly cached) fragment; batches assemble
        ``{"results": [...]}`` with one ``bytes.join`` over the flat-path
        fragments.  Raises :class:`RequestError` for client errors.
        """
        self.check_generation()
        tail = b'"trace_id":"' + trace_id.encode("ascii") + b'"}'
        if isinstance(payload, dict) and "queries" in payload:
            queries = payload["queries"]
            if not isinstance(queries, list):
                raise RequestError(
                    400, "validation", "'queries' must be a JSON array"
                )
            if len(queries) > MAX_BATCH:
                raise RequestError(
                    400, "batch_too_large",
                    f"batch of {len(queries)} exceeds the limit of {MAX_BATCH}",
                )
            fragments = self._batch_fragments(queries)
            if not fragments:
                return b'{"results":[],' + tail
            return (
                b'{"results":[' + b"},".join(fragments) + b'}],' + tail
            )
        return self._answer(payload).fragment + b"," + tail

    def handle_select(self, payload) -> dict:
        """The ``POST /select`` body: one query or ``{"queries": [...]}``.

        The dict-level API (tests, embedding); every returned result is a
        fresh copy, never a cache-owned object.
        """
        self.check_generation()
        if isinstance(payload, dict) and "queries" in payload:
            queries = payload["queries"]
            if not isinstance(queries, list):
                raise RequestError(
                    400, "validation", "'queries' must be a JSON array"
                )
            if len(queries) > MAX_BATCH:
                raise RequestError(
                    400, "batch_too_large",
                    f"batch of {len(queries)} exceeds the limit of {MAX_BATCH}",
                )
            return {
                "results": [
                    dict(self._answer(query, index).result)
                    for index, query in enumerate(queries)
                ]
            }
        return dict(self._answer(payload).result)


# -- HTTP front end ----------------------------------------------------------

#: ``(status, content_type, keep_alive, traced)`` → head template with a
#: ``%d`` Content-Length slot (and a ``%b`` X-Trace-Id slot when traced).
_HEAD_TEMPLATES: dict[tuple, bytes] = {}

#: ``(endpoint, status)`` → the sorted label key ``Counter.inc`` would
#: build for ``repro_requests_total``.  Bounded: a scanner probing many
#: distinct paths must not grow this without limit.
_REQUEST_KEYS: dict[tuple[str, int], tuple] = {}


def _request_key(endpoint: str, status: int) -> tuple:
    key = _REQUEST_KEYS.get((endpoint, status))
    if key is None:
        key = (("endpoint", endpoint), ("status", str(status)))
        if len(_REQUEST_KEYS) < 1024:
            _REQUEST_KEYS[(endpoint, status)] = key
    return key


def _head_template(
    status: int, content_type: str, keep_alive: bool, traced: bool
) -> bytes:
    key = (status, content_type, keep_alive, traced)
    template = _HEAD_TEMPLATES.get(key)
    if template is None:
        template = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            "Content-Length: %d\r\n"
            + ("X-Trace-Id: %b\r\n" if traced else "")
            + f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin1")
        _HEAD_TEMPLATES[key] = template
    return template


class _HttpProtocol(asyncio.Protocol):
    """One keep-alive connection, parsed and answered in-callback.

    Callback-based on purpose: request handling never awaits (the hot
    path is validation + bisect + bytes assembly), so going through the
    streams API would pay a task switch and coroutine frame per request
    for nothing — at pipeline depth that overhead dominates the actual
    work by an order of magnitude.  Slow-loris protection comes from a
    per-connection idle watchdog (`loop.call_later`, re-armed lazily)
    instead of a per-request ``wait_for`` task.
    """

    __slots__ = ("server", "transport", "buffer", "_paused", "_timer",
                 "_last_activity")

    def __init__(self, server: "HttpServer"):
        self.server = server
        self.transport = None
        self.buffer = bytearray()
        self._paused = False
        self._timer = None
        self._last_activity = 0.0

    # -- transport callbacks ------------------------------------------------

    def connection_made(self, transport) -> None:
        server = self.server
        if server._draining:
            transport.close()
            return
        self.transport = transport
        server._connections.add(self)
        loop = server._loop
        self._last_activity = loop.time()
        if server.read_timeout:
            self._timer = loop.call_later(server.read_timeout, self._on_timer)

    def connection_lost(self, exc) -> None:
        self.server._connections.discard(self)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def eof_received(self) -> bool:
        return False  # close on client half-close

    def pause_writing(self) -> None:
        self._paused = True

    def resume_writing(self) -> None:
        self._paused = False
        if self.buffer and self.transport is not None:
            self._process()

    def data_received(self, data: bytes) -> None:
        if self.transport is None:  # refused while draining
            return
        self.buffer += data
        self._last_activity = self.server._loop.time()
        self._process()

    # -- watchdog -----------------------------------------------------------

    def _on_timer(self) -> None:
        # Re-armed lazily: fires at most every read_timeout seconds and
        # closes once the connection has been idle at least that long
        # (worst-case close after < 2× read_timeout of idleness).
        server = self.server
        idle = server._loop.time() - self._last_activity
        if idle >= server.read_timeout:
            self._timer = None
            if self.transport is not None:
                self.transport.close()
        else:
            self._timer = server._loop.call_later(
                server.read_timeout - idle, self._on_timer
            )

    # -- request framing ----------------------------------------------------

    def _process(self) -> None:
        # All responses parsed out of one read land in ONE transport
        # write: at pipeline depth that turns ~N send syscalls into one,
        # which is a large share of the per-request budget.
        buf = self.buffer
        out: list[bytes] = []
        close = False
        while not self._paused:
            end = buf.find(b"\r\n\r\n")
            if end < 0:
                if len(buf) > MAX_HEADER:
                    out.append(self._read_error(RequestError(
                        400, "bad_request",
                        f"request head exceeds {MAX_HEADER} bytes",
                    )))
                    close = True
                break
            head = bytes(buf[:end])
            line_end = head.find(b"\r\n")
            if line_end < 0:
                line_end = len(head)
            parts = head[:line_end].split()
            if len(parts) != 3:
                out.append(self._read_error(RequestError(
                    400, "bad_request", "malformed request line"
                )))
                close = True
                break
            headers_blob = head[line_end:].lower()
            length = 0
            error: RequestError | None = None
            marker = headers_blob.find(b"content-length:")
            if marker >= 0:
                stop = headers_blob.find(b"\r\n", marker)
                if stop < 0:
                    stop = len(headers_blob)
                raw = headers_blob[marker + 15:stop].strip()
                if raw:
                    try:
                        length = int(raw.decode("latin1"))
                    except ValueError:
                        # Previously this fell into a broad ValueError
                        # handler and silently dropped the connection;
                        # a malformed header deserves a typed 400.
                        error = RequestError(
                            400, "bad_request",
                            "malformed Content-Length header: "
                            f"{raw.decode('latin1')!r}",
                        )
                    if error is None and length < 0:
                        error = RequestError(
                            400, "bad_request",
                            f"negative Content-Length: {length}",
                        )
            if error is None and length > MAX_BODY:
                error = RequestError(
                    413, "body_too_large",
                    f"request body of {length} bytes exceeds the limit of "
                    f"{MAX_BODY}",
                )
            if error is not None:
                # The body (if any) is unread, so the connection cannot
                # be reused — answer and close.
                out.append(self._read_error(error))
                close = True
                break
            total = end + 4 + length
            if len(buf) < total:
                break  # wait for the rest of the body
            body = bytes(buf[end + 4:total])
            del buf[:total]
            method = parts[0].decode("latin1")
            path = parts[1].decode("latin1").split("?", 1)[0]
            keep_alive = (
                b"connection: close" not in headers_blob
                and b"connection:close" not in headers_blob
            )
            out.append(self._handle(method, path, body, keep_alive))
            if not keep_alive:
                close = True
                break
        if out:
            self.transport.write(out[0] if len(out) == 1 else b"".join(out))
        if close:
            self.transport.close()

    def _read_error(self, error: RequestError) -> bytes:
        """Render a framing-level error response.  Counted against the
        synthetic ``(read)`` endpoint like the historical 413 path."""
        self.server.service.metrics.requests.inc(
            endpoint="(read)", status=str(error.status)
        )
        body = json.dumps(error.body()).encode("utf-8")
        head = _head_template(error.status, "application/json", False, False)
        return head % (len(body),) + body

    # -- dispatch + response ------------------------------------------------

    def _respond(
        self, method: str, path: str, body: bytes, trace_id: str
    ) -> "tuple[int, bytes, str]":
        """Dispatch one parsed request; shared by both timing paths."""
        server = self.server
        service = server.service
        content_type = "application/json"
        if path == "/select" and method == "POST":
            try:
                try:
                    payload = json.loads(body.decode("utf-8") or "null")
                except (json.JSONDecodeError, UnicodeDecodeError) as error:
                    raise RequestError(
                        400, "bad_json",
                        f"request body is not JSON: {error}",
                    ) from None
                status = 200
                response = service.select_body(payload, trace_id)
            except RequestError as error:
                status = error.status
                response = json.dumps(
                    dict(error.body(), trace_id=trace_id)
                ).encode("utf-8")
            except Exception as error:  # never hang the socket
                status = 500
                response = json.dumps({
                    "error": {"code": "internal", "message": str(error)},
                    "trace_id": trace_id,
                }).encode("utf-8")
        else:
            status, payload, content_type = server._dispatch(
                method, path, body
            )
            if path == "/select" and isinstance(payload, dict):
                payload = dict(payload, trace_id=trace_id)
            response = (
                payload.encode("utf-8")
                if isinstance(payload, str)
                else json.dumps(payload).encode("utf-8")
            )
        return status, response, content_type

    def _handle(self, method: str, path: str, body: bytes,
                keep_alive: bool) -> bytes:
        server = self.server
        service = server.service
        recorder = obs.get_recorder()
        # A forced span only has observable effects when someone is
        # listening: the recorder retains it, a finish hook (e.g. a
        # span-to-metrics bridge) runs on it, or the query sampler nests
        # ``select.query`` spans under it.  When none of those hold, the
        # span is pure per-request overhead (~3µs), so time the request
        # by hand with the same clock and trace-id source instead.
        if recorder.enabled or recorder._hooks or service.sampler is not None:
            return self._handle_traced(method, path, body, keep_alive)
        start = time.perf_counter()
        trace_id = obs.new_trace_id()
        status, response, content_type = self._respond(
            method, path, body, trace_id
        )
        duration = time.perf_counter() - start
        metrics = service.metrics
        metrics.request_seconds.observe(duration)
        metrics.requests.inc_key(_request_key(path, status))
        if duration >= server.slow_request_seconds:
            _logger.warning(
                "slow request: %s %s -> %d in %.3fs (trace %s)",
                method, path, status, duration, trace_id,
            )
        head = _head_template(status, content_type, keep_alive, True)
        return head % (len(response), trace_id.encode("ascii")) + response

    def _handle_traced(self, method: str, path: str, body: bytes,
                       keep_alive: bool) -> bytes:
        server = self.server
        service = server.service
        # The span is the request's timer and trace-id source — forced,
        # so it exists even while tracing is off.  Its duration feeds the
        # latency histogram through the span-to-metrics bridge; there is
        # no second clock.
        with obs.span(
            "http.request", force=True, method=method, endpoint=path
        ) as span:
            status, response, content_type = self._respond(
                method, path, body, span.trace_id
            )
            span.set_attr("status", status)
        metrics = service.metrics
        # Inlined observe_request_span: the span stays the single timing
        # source, but the label key is fetched from a bounded cache
        # instead of being sorted per request.
        metrics.request_seconds.observe(span.duration)
        metrics.requests.inc_key(_request_key(path, status))
        if span.duration >= server.slow_request_seconds:
            _logger.warning(
                "slow request: %s %s -> %d in %.3fs (trace %s)",
                method, path, status, span.duration, span.trace_id,
            )
        head = _head_template(status, content_type, keep_alive, True)
        return head % (len(response), span.trace_id.encode("ascii")) + response


class HttpServer:
    """Asyncio HTTP front end with keep-alive, pipelining and drain."""

    def __init__(
        self,
        service: SelectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        drain_timeout: float = 5.0,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
        slow_request_seconds: float = DEFAULT_SLOW_REQUEST_SECONDS,
        sock: socket.socket | None = None,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.read_timeout = read_timeout
        self.slow_request_seconds = slow_request_seconds
        self._sock = sock
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._connections: set[_HttpProtocol] = set()
        self._shutdown = asyncio.Event()
        self._draining = False

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when ephemeral.

        Raises :class:`~repro.errors.PortInUseError` when the port is
        already bound, so callers can tell "pick another port" apart from
        other socket failures.  Passing ``sock`` (e.g. an
        ``SO_REUSEPORT`` socket from :mod:`repro.service.shard`) skips
        the bind and serves on the given socket.
        """
        self._loop = asyncio.get_running_loop()
        try:
            if self._sock is not None:
                self._server = await self._loop.create_server(
                    lambda: _HttpProtocol(self), sock=self._sock
                )
            else:
                self._server = await self._loop.create_server(
                    lambda: _HttpProtocol(self), self.host, self.port
                )
        except OSError as error:
            if error.errno == errno.EADDRINUSE:
                raise PortInUseError(
                    f"cannot listen on {self.host}:{self.port}: "
                    "address already in use"
                ) from error
            raise
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (signal handlers call this)."""
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`request_shutdown`, then drain and close."""
        await self._shutdown.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, finish queued work, close connections.

        Dispatch is synchronous inside ``data_received``, so no request
        is ever half-handled when control reaches here; one loop tick
        lets already-queued reads complete, then connections close.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        await asyncio.sleep(0)
        for connection in list(self._connections):
            if connection.transport is not None:
                connection.transport.close()
        if self._server is not None:
            await self._server.wait_closed()

    def _dispatch(self, method: str, path: str, body: bytes):
        """Route one request; returns ``(status, payload, content_type)``."""
        try:
            if path == "/metrics" and method == "GET":
                return 200, self.service.metrics.render(), "text/plain; version=0.0.4"
            if path == "/healthz" and method == "GET":
                # The healthy shape is frozen ({"status": "ok", ...});
                # degraded adds a reason so probes can alert on it.
                health = {
                    "status": "ok",
                    "artifacts": len(self.service.registry),
                }
                if self.service.degraded_reason is not None:
                    health["status"] = "degraded"
                    health["reason"] = self.service.degraded_reason
                if self.service.tuner is not None:
                    # Present only when a SelfTuner is attached — the
                    # healthy shape without one stays frozen.
                    health["tuning"] = self.service.tuner.health()
                return 200, health, "application/json"
            if path == "/artifacts" and method == "GET":
                return (
                    200,
                    {
                        "artifacts": self.service.registry.summaries(),
                        "errors": dict(self.service.registry.errors),
                    },
                    "application/json",
                )
            if path == "/select" and method == "POST":
                # Normally answered on the protocol fast path; kept for
                # completeness (direct _dispatch callers, tests).
                try:
                    payload = json.loads(body.decode("utf-8") or "null")
                except (json.JSONDecodeError, UnicodeDecodeError) as error:
                    raise RequestError(
                        400, "bad_json", f"request body is not JSON: {error}"
                    ) from None
                return 200, self.service.handle_select(payload), "application/json"
            if path == "/reload" and method == "POST":
                # reload() never raises — a failed rescan flips the
                # service into degraded mode and keeps serving.
                return 200, self.service.reload(), "application/json"
            if path in ("/select", "/reload", "/metrics", "/healthz", "/artifacts"):
                raise RequestError(
                    405, "method_not_allowed", f"{method} not allowed on {path}"
                )
            raise RequestError(404, "not_found", f"no such endpoint: {path}")
        except RequestError as error:
            return error.status, error.body(), "application/json"
        except Exception as error:  # never leak a traceback as a hung socket
            return (
                500,
                {"error": {"code": "internal", "message": str(error)}},
                "application/json",
            )

    @staticmethod
    def _render(
        status,
        payload,
        content_type: str,
        keep_alive: bool,
        trace_id: str | None = None,
    ) -> bytes:
        """Assemble one full response (kept for embedders and tests)."""
        body = (
            payload.encode("utf-8")
            if isinstance(payload, str)
            else json.dumps(payload).encode("utf-8")
        )
        head = _head_template(status, content_type, keep_alive, trace_id is not None)
        if trace_id is not None:
            return head % (len(body), trace_id.encode("ascii")) + body
        return head % (len(body),) + body


async def _serve_async(service: SelectionService, host: str, port: int) -> int:
    server = HttpServer(service, host, port)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        loop.add_signal_handler(signal.SIGHUP, service.reload)
    except (NotImplementedError, RuntimeError, AttributeError):  # pragma: no cover
        pass
    print(
        f"repro selection service on http://{server.host}:{server.port} "
        f"({len(service.registry)} artifacts); SIGTERM drains, SIGHUP reloads"
    )
    await server.serve_until_shutdown()
    print("drained; bye")
    return 0


def serve(
    directory: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_size: int = 4096,
) -> int:
    """Blocking entry point used by ``repro serve`` (single process)."""
    registry = ArtifactRegistry(directory)
    service = SelectionService(registry, cache_size=cache_size)
    return asyncio.run(_serve_async(service, host, port))


class ServiceThread:
    """An :class:`HttpServer` on a private loop in a daemon thread.

    Context-manager: ``with ServiceThread(service) as handle:`` gives a
    running server at ``handle.port``; exit drains it.  Used by the test
    suite and the load harness — signal handlers are not installed
    (they only work on the main thread).
    """

    def __init__(
        self,
        service: SelectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self.server: HttpServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise ServiceError("service thread did not start within 10 s")
        if self._error is not None:
            if isinstance(self._error, ServiceError):
                raise self._error  # typed: e.g. PortInUseError
            raise ServiceError(f"service thread failed: {self._error}")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.server = HttpServer(
            self.service, self.host, self.port,
            read_timeout=self.read_timeout,
        )
        try:
            await self.server.start()
        except (OSError, ServiceError) as error:
            self._error = error
            self._ready.set()
            return
        self.port = self.server.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.serve_until_shutdown()

    def stop(self) -> None:
        """Drain and join.  Idempotent: safe to call repeatedly, after a
        failed :meth:`start`, or on a thread that never started."""
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed by a previous stop()
        if self._thread.ident is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
