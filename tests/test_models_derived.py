"""Tests for the implementation-derived models.

Structural unit tests (coefficients, formulas at known points) plus the
crucial *predictive accuracy* tests: with parameters fitted the paper's way,
each model must track its own algorithm's simulated time, and the models
together must rank algorithms like the simulator does.
"""

import math

import pytest

from repro.models.base import LinearCoefficients, segment_count
from repro.models.derived import (
    DERIVED_BCAST_MODELS,
    BinaryTreeModel,
    BinomialTreeModel,
    ChainTreeModel,
    KChainTreeModel,
    LinearTreeModel,
    SplitBinaryTreeModel,
)
from repro.models.gamma import GammaFunction
from repro.models.hockney import HockneyParams
from repro.units import KiB, MiB

GAMMA = GammaFunction({3: 1.11, 4: 1.22, 5: 1.28, 6: 1.45, 7: 1.54})
PARAMS = HockneyParams(alpha=50e-6, beta=1e-9)
SEGMENT = 8 * KiB


class TestSegmentCount:
    def test_matches_paper_arithmetic(self):
        assert segment_count(4 * MiB, SEGMENT) == 512
        assert segment_count(8 * KiB, SEGMENT) == 1
        assert segment_count(12 * KiB, SEGMENT) == 2

    def test_unsegmented(self):
        assert segment_count(100, 0) == 1
        assert segment_count(100, 1000) == 1

    def test_zero_bytes(self):
        assert segment_count(0, SEGMENT) == 1


class TestLinearCoefficients:
    def test_evaluate(self):
        coeffs = LinearCoefficients(3.0, 3000.0)
        assert coeffs.evaluate(PARAMS) == pytest.approx(3 * 50e-6 + 3000e-9)

    def test_addition(self):
        total = LinearCoefficients(1, 10) + LinearCoefficients(2, 20)
        assert (total.c_alpha, total.c_beta) == (3, 30)


class TestFormulas:
    def test_linear_is_p_minus_1_p2p_times(self):
        model = LinearTreeModel(GAMMA)
        expected = 9 * (PARAMS.alpha + 64 * KiB * PARAMS.beta)
        assert model.predict(10, 64 * KiB, SEGMENT, PARAMS) == pytest.approx(expected)

    def test_chain_latency_split_coefficients(self):
        """Latency paid once per hop (fill), bytes on every stage."""
        model = ChainTreeModel(GAMMA)
        coeffs = model.coefficients(10, 64 * KiB, SEGMENT)  # n_s=8, P=10
        assert coeffs.c_alpha == pytest.approx(10 - 1)
        assert coeffs.c_beta == pytest.approx((8 + 10 - 2) * 8 * KiB)

    def test_chain_single_segment_equals_hop_chain(self):
        """With one segment the chain is P-1 sequential p2p messages."""
        model = ChainTreeModel(GAMMA)
        predicted = model.predict(10, SEGMENT, SEGMENT, PARAMS)
        assert predicted == pytest.approx(
            9 * (PARAMS.alpha + SEGMENT * PARAMS.beta)
        )

    def test_k_chain_uses_gamma_of_five(self):
        model = KChainTreeModel(GAMMA)  # K = 4
        coeffs = model.coefficients(13, 64 * KiB, SEGMENT)  # chains of 3
        assert coeffs.c_alpha == pytest.approx(3)  # longest chain (fill)
        assert coeffs.c_beta == pytest.approx((8 * GAMMA(5) + 3 - 1) * 8 * KiB)

    def test_binary_uses_gamma_of_three(self):
        model = BinaryTreeModel(GAMMA)
        coeffs = model.coefficients(15, 64 * KiB, SEGMENT)  # H = 3
        expected_stages = (8 + 3 - 1) * GAMMA(3)
        assert coeffs.c_alpha == pytest.approx(expected_stages)

    def test_split_binary_adds_exchange_term(self):
        model = SplitBinaryTreeModel(GAMMA)
        nbytes = 64 * KiB
        coeffs = model.coefficients(15, nbytes, SEGMENT)
        pipeline_stages = (4 + 3 - 1) * GAMMA(3)
        assert coeffs.c_alpha == pytest.approx(pipeline_stages + 1)
        assert coeffs.c_beta == pytest.approx(
            pipeline_stages * 8 * KiB + nbytes / 2
        )

    def test_split_binary_falls_back_to_linear_when_unsplittable(self):
        model = SplitBinaryTreeModel(GAMMA)
        # One segment only -> implementation falls back to linear.
        coeffs = model.coefficients(8, 4 * KiB, SEGMENT)
        assert coeffs.c_alpha == 7
        assert coeffs.c_beta == 7 * 4 * KiB

    def test_binomial_matches_paper_eq6(self):
        """Hand-evaluate Eq. 6 for P=90, n_s=4."""
        model = BinomialTreeModel(GAMMA)
        procs, nbytes = 90, 32 * KiB  # n_s = 4
        ceil_log = math.ceil(math.log2(procs))  # 7
        floor_log = math.floor(math.log2(procs))  # 6
        expected = 4 * GAMMA(ceil_log + 1) - 1
        for i in range(1, floor_log):
            expected += GAMMA(ceil_log - i + 1)
        coeffs = model.coefficients(procs, nbytes, SEGMENT)
        assert coeffs.c_alpha == pytest.approx(expected)
        assert coeffs.c_beta == pytest.approx(expected * 8 * KiB)

    @pytest.mark.parametrize("name", sorted(DERIVED_BCAST_MODELS))
    def test_single_process_is_free(self, name):
        model = DERIVED_BCAST_MODELS[name](GAMMA)
        assert model.predict(1, 1 * MiB, SEGMENT, PARAMS) == 0.0

    @pytest.mark.parametrize("name", sorted(DERIVED_BCAST_MODELS))
    def test_monotone_in_message_size(self, name):
        # Start at 64 KiB: below two segments split_binary legitimately
        # falls back to the (more expensive) linear algorithm, so the very
        # small end is not monotone for it — faithful to the implementation.
        model = DERIVED_BCAST_MODELS[name](GAMMA)
        times = [
            model.predict(16, m, SEGMENT, PARAMS)
            for m in (64 * KiB, 512 * KiB, 4 * MiB)
        ]
        assert times == sorted(times)
        assert times[0] > 0

    @pytest.mark.parametrize("name", sorted(DERIVED_BCAST_MODELS))
    def test_monotone_in_procs_for_fixed_size(self, name):
        model = DERIVED_BCAST_MODELS[name](GAMMA)
        times = [model.predict(p, 256 * KiB, SEGMENT, PARAMS) for p in (4, 8, 16, 64)]
        assert all(b >= a * 0.999 for a, b in zip(times, times[1:]))


class TestStructuralProperties:
    def test_chain_dominated_by_depth_at_small_messages(self):
        """For one segment the chain costs ~P stage times."""
        model = ChainTreeModel(GAMMA)
        t_small = model.predict(100, SEGMENT, SEGMENT, PARAMS)
        single_stage = PARAMS.alpha + SEGMENT * PARAMS.beta
        assert t_small == pytest.approx(99 * single_stage)

    def test_binomial_beats_linear_at_scale(self):
        binomial = BinomialTreeModel(GAMMA)
        linear = LinearTreeModel(GAMMA)
        assert binomial.predict(90, 1 * MiB, SEGMENT, PARAMS) < linear.predict(
            90, 1 * MiB, SEGMENT, PARAMS
        )

    def test_split_binary_beats_binary_at_large_messages(self):
        """Halving the pipelined volume wins once n_s is large."""
        split = SplitBinaryTreeModel(GAMMA)
        binary = BinaryTreeModel(GAMMA)
        big = 4 * MiB
        assert split.predict(90, big, SEGMENT, PARAMS) < binary.predict(
            90, big, SEGMENT, PARAMS
        )

    def test_registry_covers_all_algorithms(self):
        assert sorted(DERIVED_BCAST_MODELS) == [
            "binary",
            "binomial",
            "chain",
            "hierarchical",
            "k_chain",
            "linear",
            "scatter_allgather",
            "split_binary",
        ]

    def test_scatter_allgather_bandwidth_term(self):
        from repro.models.derived import ScatterAllgatherModel

        model = ScatterAllgatherModel(GAMMA)
        coeffs = model.coefficients(16, 1 * MiB, SEGMENT)
        assert coeffs.c_alpha == pytest.approx(4 + 15)  # log2(16) + P-1
        assert coeffs.c_beta == pytest.approx(2 * 1 * MiB * 15 / 16)

    def test_scatter_allgather_fallback_matches_implementation(self):
        from repro.models.derived import ScatterAllgatherModel

        model = ScatterAllgatherModel(GAMMA)
        coeffs = model.coefficients(8, 6, SEGMENT)  # fewer bytes than ranks
        assert coeffs.c_alpha == 7
        assert coeffs.c_beta == 7 * 6

    def test_registry_names_match_model_attribute(self):
        for name, cls in DERIVED_BCAST_MODELS.items():
            assert cls.algorithm == name
