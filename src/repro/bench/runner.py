"""Experiment orchestration for the paper's evaluation section."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.clusters.spec import ClusterSpec
from repro.estimation.workflow import PlatformModel
from repro.selection.model_based import ModelBasedSelector
from repro.selection.ompi_fixed import OmpiFixedSelector
from repro.selection.oracle import MeasuredOracle, Selection


@dataclass(frozen=True)
class SelectionRow:
    """One row of a Table-3-style selection comparison."""

    nbytes: int
    best: Selection
    best_time: float
    model: Selection
    model_time: float
    ompi: Selection
    ompi_time: float

    @property
    def model_degradation(self) -> float:
        """Model-based pick's slowdown vs the best, in percent."""
        return 100.0 * (self.model_time - self.best_time) / self.best_time

    @property
    def ompi_degradation(self) -> float:
        """Open MPI pick's slowdown vs the best, in percent."""
        return 100.0 * (self.ompi_time - self.best_time) / self.best_time


def selection_comparison(
    spec: ClusterSpec,
    platform: PlatformModel,
    procs: int,
    sizes: Sequence[int],
    *,
    oracle: MeasuredOracle | None = None,
    max_reps: int = 8,
) -> list[SelectionRow]:
    """Compare best / model-based / Open MPI selections over ``sizes``.

    This is the experiment behind Table 3 and the three curves of Fig. 5.
    Passing a shared ``oracle`` lets several configurations reuse the
    (memoised) measurements.
    """
    if oracle is None:
        oracle = MeasuredOracle(spec, max_reps=max_reps)
    model_selector = ModelBasedSelector(platform)
    ompi_selector = OmpiFixedSelector()

    rows: list[SelectionRow] = []
    for nbytes in sizes:
        best, best_time = oracle.best(procs, nbytes)
        model = model_selector.select(procs, nbytes)
        ompi = ompi_selector.select(procs, nbytes)
        rows.append(
            SelectionRow(
                nbytes=nbytes,
                best=best,
                best_time=best_time,
                model=model,
                model_time=oracle.measure_selection(procs, nbytes, model),
                ompi=ompi,
                ompi_time=oracle.measure_selection(procs, nbytes, ompi),
            )
        )
    return rows
