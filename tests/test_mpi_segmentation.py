"""Tests for Open MPI-style segmentation arithmetic."""

import pytest

from repro.errors import MpiError
from repro.mpi.segmentation import plan_segments


class TestPlanSegments:
    def test_exact_division(self):
        plan = plan_segments(24, 8)
        assert plan.sizes == (8, 8, 8)
        assert plan.num_segments == 3

    def test_remainder_goes_last(self):
        plan = plan_segments(20, 8)
        assert plan.sizes == (8, 8, 4)

    def test_zero_segment_size_disables_segmentation(self):
        assert plan_segments(1000, 0).sizes == (1000,)

    def test_segment_larger_than_message_disables_segmentation(self):
        assert plan_segments(1000, 4096).sizes == (1000,)

    def test_segment_equal_to_message_is_one_segment(self):
        assert plan_segments(4096, 4096).sizes == (4096,)

    def test_zero_byte_message_plans_no_segments(self):
        """m = 0 is a no-op: nothing flows, not even a 0-byte segment."""
        plan = plan_segments(0, 8192)
        assert plan.sizes == ()
        assert plan.num_segments == 0
        assert plan.total_bytes == 0

    def test_paper_configuration(self):
        """4 MB with 8 KB segments: the paper's largest experiment."""
        plan = plan_segments(4 * 1024 * 1024, 8 * 1024)
        assert plan.num_segments == 512
        assert all(size == 8192 for size in plan.sizes)

    def test_sizes_sum_to_total(self):
        for total, seg in [(100, 7), (8192, 1024), (1, 8), (12345, 1000)]:
            plan = plan_segments(total, seg)
            assert sum(plan.sizes) == total

    def test_iteration_yields_sizes(self):
        assert list(plan_segments(10, 4)) == [4, 4, 2]

    @pytest.mark.parametrize("total,seg", [(-1, 8), (8, -1)])
    def test_negative_inputs_rejected(self, total, seg):
        with pytest.raises(MpiError):
            plan_segments(total, seg)
