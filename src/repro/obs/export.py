"""Span exporters: JSONL and the Chrome trace-event format.

Two interchange formats cover the consumers we have:

* **JSONL** — one :meth:`Span.to_dict` object per line; trivially
  greppable, streamable, and the format the CI smoke job parses back into
  a span tree (:func:`load_jsonl`, :func:`build_tree`);
* **Chrome trace events** — complete ("X") events grouped by process and
  thread, loadable in ``chrome://tracing`` / Perfetto alongside the
  simulator's message-level traces (:meth:`repro.sim.trace.Tracer`).

:func:`save` dispatches on the file suffix (``.jsonl`` → JSONL, anything
else → Chrome JSON) so CLI plumbing needs a single flag.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.spans import Span, SpanRecorder


def to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, oldest span first."""
    return "".join(json.dumps(span.to_dict()) + "\n" for span in spans)


def save_jsonl(spans: Iterable[Span], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(to_jsonl(spans))
    return path


def load_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL span file back into span dicts (oldest first)."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def to_chrome_events(spans: Sequence[Span], origin: float | None = None) -> list[dict]:
    """The spans as Chrome trace-event dicts.

    Each span becomes one complete ("X") event on its ``(pid, thread)``
    row; timestamps are microseconds relative to ``origin`` (defaults to
    the earliest span start, so traces always begin near zero).
    """
    if origin is None:
        origin = min((span.start for span in spans), default=0.0)
    scale = 1e6
    threads: set[tuple[int, int, str]] = set()
    events: list[dict] = []
    for span in spans:
        threads.add((span.pid, span.thread_id, span.thread_name))
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": (span.start - origin) * scale,
            "dur": span.duration * scale,
            "pid": span.pid,
            "tid": span.thread_id,
            "args": dict(
                span.attributes,
                trace_id=span.trace_id,
                span_id=span.span_id,
                parent_id=span.parent_id,
            ),
        })
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": f"repro pid {pid}"},
        }
        for pid in sorted({pid for pid, _, _ in threads})
    ] + [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": name},
        }
        for pid, tid, name in sorted(threads)
    ]
    return meta + events


def to_chrome_json(
    spans: Sequence[Span],
    origin: float | None = None,
    *,
    indent: int | None = None,
) -> str:
    document = {
        "traceEvents": to_chrome_events(spans, origin),
        "displayTimeUnit": "ms",
    }
    return json.dumps(document, indent=indent)


def save_chrome_trace(
    spans: Sequence[Span], path: str | Path, origin: float | None = None
) -> Path:
    path = Path(path)
    path.write_text(to_chrome_json(spans, origin, indent=1) + "\n")
    return path


def save(recorder: SpanRecorder, path: str | Path) -> Path:
    """Write a recorder's spans; format chosen by suffix.

    ``*.jsonl`` → JSONL, anything else → Chrome trace JSON.
    """
    path = Path(path)
    spans = recorder.finished()
    if path.suffix == ".jsonl":
        return save_jsonl(spans, path)
    return save_chrome_trace(spans, path, origin=recorder.origin)


def build_tree(records: Sequence[dict]) -> list[dict]:
    """Nest span dicts (from :func:`load_jsonl` or ``to_dict``) by parent.

    Returns the roots; every node gains a ``"children"`` list.  Orphans
    (parent not in the record set — e.g. the parent outlived a streaming
    export) are promoted to roots rather than dropped.
    """
    by_id = {record["span_id"]: dict(record, children=[]) for record in records}
    roots: list[dict] = []
    for record in by_id.values():
        parent = by_id.get(record.get("parent_id") or "")
        if parent is not None:
            parent["children"].append(record)
        else:
            roots.append(record)
    return roots


def span_names(records: Sequence[dict]) -> set[str]:
    """All distinct span names in a record set (tree-coverage checks)."""
    return {record["name"] for record in records}


def load_chrome_trace(path: str | Path) -> list[dict]:
    """Read a Chrome trace written by :func:`save_chrome_trace`.

    Returns the non-metadata ("X") events as span-like dicts with
    ``name``/``span_id``/``parent_id`` restored from ``args``, so
    :func:`build_tree` works on either export format.
    """
    document = json.loads(Path(path).read_text())
    records = []
    for event in document["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        records.append({
            "name": event["name"],
            "span_id": args.get("span_id"),
            "parent_id": args.get("parent_id"),
            "trace_id": args.get("trace_id"),
            "start": event["ts"] / 1e6,
            "duration": event["dur"] / 1e6,
            "pid": event["pid"],
            "thread_id": event["tid"],
            "attributes": {
                key: value
                for key, value in args.items()
                if key not in ("span_id", "parent_id", "trace_id")
            },
        })
    return records
