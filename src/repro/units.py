"""Byte and time unit helpers used throughout the package.

All simulation times are plain ``float`` seconds and all message sizes are
plain ``int`` bytes; these helpers only make literals readable
(``4 * MiB``, ``50 * USEC``) and render values for tables.
"""

from __future__ import annotations

#: One kibibyte (1024 bytes). The paper's "8 KB" segment is ``8 * KiB``.
KiB = 1024
#: One mebibyte (1024**2 bytes).
MiB = 1024 * 1024
#: One gibibyte (1024**3 bytes).
GiB = 1024 * 1024 * 1024

#: One microsecond, in seconds.
USEC = 1e-6
#: One millisecond, in seconds.
MSEC = 1e-3
#: One nanosecond, in seconds.
NSEC = 1e-9


def gbit_per_s_to_byte_time(gbps: float) -> float:
    """Convert a link speed in Gbit/s to seconds-per-byte.

    >>> round(gbit_per_s_to_byte_time(10.0) * 8192, 9)  # 8 KiB on 10 GbE
    6.554e-06
    """
    if gbps <= 0:
        raise ValueError(f"link speed must be positive, got {gbps}")
    return 8.0 / (gbps * 1e9)


def format_bytes(nbytes: int) -> str:
    """Render a byte count the way the paper's tables do (``8 KB``, ``4 MB``)."""
    if nbytes % MiB == 0 and nbytes >= MiB:
        return f"{nbytes // MiB} MB"
    if nbytes % KiB == 0 and nbytes >= KiB:
        return f"{nbytes // KiB} KB"
    return f"{nbytes} B"


def format_seconds(seconds: float) -> str:
    """Render a duration with an auto-selected unit (s/ms/us/ns)."""
    if seconds != seconds:  # NaN
        return "nan"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f} s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if magnitude >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def log_spaced_sizes(low: int, high: int, count: int) -> list[int]:
    """Message sizes separated by a constant step in the logarithmic scale.

    This reproduces the paper's sweep of ten sizes from 8 KB to 4 MB with
    ``log m_i - log m_{i-1} = const``; endpoints are included exactly and all
    sizes are rounded to integers.

    >>> log_spaced_sizes(8 * KiB, 4 * MiB, 10)[:3]
    [8192, 16384, 32768]
    """
    if count < 2:
        raise ValueError("need at least two sizes")
    if not (0 < low < high):
        raise ValueError(f"invalid size range [{low}, {high}]")
    ratio = (high / low) ** (1.0 / (count - 1))
    sizes = [int(round(low * ratio**i)) for i in range(count)]
    sizes[0], sizes[-1] = low, high
    return sizes
