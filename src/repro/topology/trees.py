"""Named re-export of the *virtual* communication-tree helpers.

Two distinct things in this codebase are colloquially called "topology":

* **Virtual trees** (this module / :mod:`repro.topology`): the rooted
  trees collective algorithms route messages over — binomial, binary,
  k-ary, chain.  They exist purely in rank space and are chosen by the
  algorithm, not the hardware.
* **Physical fabric** (:mod:`repro.fabric`): the actual interconnect —
  racks, leaf/spine switches, oversubscribed uplinks.  It constrains
  *how fast* a virtual tree's edges run, never their shape.

Import tree builders from here (``repro.topology.trees``) when the
distinction matters; the names are identical to ``repro.topology``.
"""

from repro.topology.builders import (
    TREE_CACHE_MAXSIZE,
    build_binary_tree,
    build_binomial_tree,
    build_chain_tree,
    build_in_order_binomial_tree,
    build_kary_tree,
    clear_tree_caches,
)
from repro.topology.hierarchy import build_hierarchy_tree, comm_group_of
from repro.topology.tree import Tree

__all__ = [
    "TREE_CACHE_MAXSIZE",
    "Tree",
    "build_binary_tree",
    "build_binomial_tree",
    "build_chain_tree",
    "build_hierarchy_tree",
    "build_in_order_binomial_tree",
    "build_kary_tree",
    "clear_tree_caches",
    "comm_group_of",
]
