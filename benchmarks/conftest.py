"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The two
expensive artefacts — a §4 calibration and a measured oracle per cluster —
are session-scoped so Table 2, Table 3, Fig. 5 and the ablations share them.

Environment knobs:

* ``REPRO_BENCH_NOISE`` — lognormal noise sigma for the simulated
  measurements (default 0: deterministic, every adaptive measurement
  converges after two identical repetitions).  Set e.g. ``0.015`` to
  exercise the full confidence-interval methodology; expect a ~4x longer
  run.
* ``REPRO_BENCH_QUICK`` — set to 1 to use 6 message sizes instead of the
  paper's 10 and fewer repetitions.
"""

from __future__ import annotations

import os

import pytest

from repro.clusters import GRISOU, GROS
from repro.estimation.workflow import calibrate_platform
from repro.selection.oracle import MeasuredOracle
from repro.units import KiB, MiB, log_spaced_sizes

NOISE_SIGMA = float(os.environ.get("REPRO_BENCH_NOISE", "0"))
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: The paper's ten log-spaced sizes from 8 KB to 4 MB (6 in quick mode).
PAPER_SIZES = log_spaced_sizes(8 * KiB, 4 * MiB, 6 if QUICK else 10)
MAX_REPS = 4 if QUICK else 8

#: Paper §5.2: calibration uses 40 processes on Grisou, 124 on Gros.
CALIBRATION_PROCS = {"grisou": 40, "gros": 124}
#: Paper §5.3 / Fig. 5: evaluation process counts per cluster.
FIG5_PROCS = {"grisou": (50, 80, 90), "gros": (80, 100, 124)}
#: Paper Table 3 process counts.
TABLE3_PROCS = {"grisou": 90, "gros": 100}


def _spec(base):
    return base.with_noise(NOISE_SIGMA)


@pytest.fixture(scope="session")
def grisou():
    return _spec(GRISOU)


@pytest.fixture(scope="session")
def gros():
    return _spec(GROS)


@pytest.fixture(scope="session")
def grisou_calibration(grisou):
    return calibrate_platform(
        grisou,
        procs=CALIBRATION_PROCS["grisou"],
        sizes=PAPER_SIZES,
        max_reps=MAX_REPS,
    )


@pytest.fixture(scope="session")
def gros_calibration(gros):
    return calibrate_platform(
        gros,
        procs=CALIBRATION_PROCS["gros"],
        sizes=PAPER_SIZES,
        max_reps=MAX_REPS,
    )


@pytest.fixture(scope="session")
def grisou_oracle(grisou):
    return MeasuredOracle(grisou, max_reps=MAX_REPS)


@pytest.fixture(scope="session")
def gros_oracle(gros):
    return MeasuredOracle(gros, max_reps=MAX_REPS)
