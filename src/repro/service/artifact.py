"""Versioned, content-hashed selection artifacts.

An *artifact* is the deployable unit of the paper's method: everything a
call site needs to answer "(collective, P, m) → algorithm" for one
cluster, frozen into a single JSON document —

* the calibrated :class:`~repro.estimation.workflow.PlatformModel`
  (per-algorithm Hockney parameters plus γ) that produced the decisions;
* one precomputed :class:`~repro.selection.decision_table.DecisionTable`
  per collective operation;
* the generated Python decision function source
  (:func:`repro.selection.codegen.generate_python`), so a consumer
  without this package can still decide.

Artifacts are *versioned* (``ARTIFACT_SCHEMA``) and *content-hashed*: the
document carries a SHA-256 over its canonical payload, and
:func:`load_artifact` rejects any file whose schema or hash does not
match — a corrupted or hand-edited artifact never reaches a server.  The
cluster is identified both by name and by
:meth:`ClusterSpec.fingerprint`, so a registry can tell two differently
parameterised "gros" platforms apart.

:func:`build_artifact` runs the full pipeline — §4 calibration → model
fit → decision-table grid → code generation → packaging.  All
simulations route through a :class:`repro.exec.ParallelRunner`, so a
build parallelises across cores and a warm persistent cache rebuilds an
artifact without simulating anything.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Sequence

import repro
from repro import obs
from repro.clusters.spec import ClusterSpec
from repro.errors import ArtifactError
from repro.estimation.registry import get_pipeline, run_pipeline
from repro.estimation.workflow import (
    DEFAULT_QUALITY,
    PlatformModel,
    QualityThresholds,
)
from repro.exec.runner import ParallelRunner, default_runner
from repro.selection.codegen import generate_python
from repro.selection.decision_table import DecisionTable, build_decision_table
from repro.selection.flat_table import FlatDecisionTable
from repro.selection.model_based import ModelBasedSelector
from repro.units import KiB, MiB, log_spaced_sizes

#: Bump on any change to the artifact document layout.
ARTIFACT_SCHEMA = 1

#: Default decision grid: the paper's ten log-spaced sizes, 8 KB – 4 MB.
DEFAULT_SIZE_POINTS = tuple(log_spaced_sizes(8 * KiB, 4 * MiB, 10))


@dataclass(frozen=True)
class ArtifactEntry:
    """One collective operation's decision data inside an artifact."""

    operation: str
    platform: PlatformModel
    table: DecisionTable
    function_name: str
    source: str

    def compile(self):
        """Execute the stored generated source; return the decision callable."""
        namespace: dict = {}
        try:
            exec(compile(self.source, f"<artifact {self.operation}>", "exec"),
                 namespace)
            return namespace[self.function_name]
        except (SyntaxError, KeyError) as error:
            raise ArtifactError(
                f"stored decision function for {self.operation!r} does not "
                f"compile: {error}"
            ) from error

    def to_dict(self) -> dict:
        return {
            "operation": self.operation,
            "platform": self.platform.to_dict(),
            "table": self.table.to_dict(),
            "function_name": self.function_name,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArtifactEntry":
        return cls(
            operation=data["operation"],
            platform=PlatformModel.from_dict(data["platform"]),
            table=DecisionTable.from_dict(data["table"]),
            function_name=data["function_name"],
            source=data["source"],
        )


@dataclass(frozen=True)
class SelectionArtifact:
    """A deployable decision package for one cluster.

    ``entries`` maps collective operation names (``"bcast"``, ...) to
    their :class:`ArtifactEntry`.  The content hash is computed lazily
    over the canonical payload and memoised.
    """

    cluster: str
    cluster_fingerprint: str
    entries: dict[str, ArtifactEntry]
    builder_version: str = repro.__version__
    #: Name of the fabric the artifact was conditioned on; ``""`` for a
    #: flat (single-switch) cluster.  Folded into the hashed payload only
    #: when set, so flat artifacts keep their pre-fabric content hashes.
    fabric: str = ""
    #: Calibration quality diagnostics per operation (see
    #: :meth:`CalibrationResult.quality_report`).  Deliberately *outside*
    #: the hashed payload: diagnostics describe the build, not the
    #: decisions, so adding them never changes a content hash — artifacts
    #: built before this field existed keep their hashes bit-for-bit.
    quality: dict = field(default_factory=dict, compare=False)
    #: How the artifact was built (e.g. ``{"batch": True}``).  Like
    #: ``quality``, deliberately outside the hashed payload: the batched
    #: engine is bit-identical to the serial one, so the execution mode
    #: describes the build process, never the decisions.
    build_info: dict = field(default_factory=dict, compare=False)
    #: Performance-guideline verification report (see
    #: :func:`repro.tuning.guidelines.verify_guidelines`), stamped by the
    #: builder.  Same sibling convention as ``quality``: the report
    #: *describes* the packaged decisions, so stamping or re-verifying an
    #: artifact never changes its content hash.
    guidelines: dict = field(default_factory=dict, compare=False)
    _hash: list = field(default_factory=list, compare=False, repr=False)
    _flat: list = field(default_factory=list, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.entries:
            raise ArtifactError("artifact needs at least one collective entry")
        for operation, entry in self.entries.items():
            if entry.operation != operation:
                raise ArtifactError(
                    f"entry keyed {operation!r} describes {entry.operation!r}"
                )

    @property
    def operations(self) -> list[str]:
        """Collective operations this artifact can decide, sorted."""
        return sorted(self.entries)

    def payload(self) -> dict:
        """The canonical hashed content (everything but schema and hash)."""
        doc = {
            "cluster": self.cluster,
            "cluster_fingerprint": self.cluster_fingerprint,
            "builder_version": self.builder_version,
            "entries": {
                operation: self.entries[operation].to_dict()
                for operation in self.operations
            },
        }
        if self.fabric:
            # Key present only for topology-conditioned artifacts: flat
            # builds hash to the same bytes as before fabrics existed.
            doc["fabric"] = self.fabric
        return doc

    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON payload (memoised)."""
        if not self._hash:
            canonical = json.dumps(
                self.payload(), sort_keys=True, separators=(",", ":")
            )
            self._hash.append(hashlib.sha256(canonical.encode()).hexdigest())
        return self._hash[0]

    @property
    def artifact_id(self) -> str:
        """Short stable identifier: cluster name plus hash prefix."""
        return f"{self.cluster}-{self.content_hash()[:12]}"

    def select(self, operation: str, procs: int, nbytes: int):
        """Table lookup for one query (the server's hot path)."""
        return self.lookup(operation, procs, nbytes)[0]

    def flat_tables(self) -> dict[str, FlatDecisionTable]:
        """Per-operation :class:`FlatDecisionTable` views (memoised).

        Compiled once per loaded artifact — the same list-cell trick as
        the content hash keeps the dataclass frozen — so the serving
        layer gets flat-array lookups without recompiling per request.
        The flat view is derived purely from the decision tables; it can
        never disagree with :meth:`lookup`.
        """
        if not self._flat:
            self._flat.append({
                operation: FlatDecisionTable.from_table(
                    entry.table, operation=operation
                )
                for operation, entry in self.entries.items()
            })
        return self._flat[0]

    def lookup(self, operation: str, procs: int, nbytes: int):
        """Table lookup plus the below-grid clamp indicator.

        Same contract as :meth:`DecisionTable.lookup`: the boolean is
        ``True`` when the query fell below the grid and the answer is
        the clamped first-cell extrapolation.
        """
        try:
            entry = self.entries[operation]
        except KeyError:
            raise ArtifactError(
                f"artifact {self.artifact_id} has no {operation!r} table; "
                f"operations: {', '.join(self.operations)}"
            ) from None
        return entry.table.lookup(procs, nbytes)

    def summary(self) -> dict:
        """Registry-listing view: identity plus grid shapes, no tables."""
        doc = {
            "id": self.artifact_id,
            "cluster": self.cluster,
            "cluster_fingerprint": self.cluster_fingerprint,
            "builder_version": self.builder_version,
            "schema": ARTIFACT_SCHEMA,
            "content_hash": self.content_hash(),
            "operations": {
                operation: {
                    "algorithms": self.entries[operation].platform.algorithms,
                    "proc_points": len(self.entries[operation].table.proc_points),
                    "size_points": len(self.entries[operation].table.size_points),
                }
                for operation in self.operations
            },
        }
        if self.fabric:
            doc["fabric"] = self.fabric
        return doc

    def verify(self) -> None:
        """Cross-check the packaged representations against each other.

        The stored generated source must compile and agree with the
        decision table on every grid cell — the bit-identity invariant the
        service later relies on.  Raises :class:`ArtifactError` on any
        disagreement.
        """
        for operation, entry in self.entries.items():
            fn = entry.compile()
            table = entry.table
            for i, procs in enumerate(table.proc_points):
                for j, nbytes in enumerate(table.size_points):
                    expected = table.choices[i][j]
                    got = fn(procs, nbytes)
                    if got != (expected.algorithm, expected.segment_size):
                        raise ArtifactError(
                            f"{operation} decision function disagrees with "
                            f"table at P={procs} m={nbytes}: "
                            f"{got} != {(expected.algorithm, expected.segment_size)}"
                        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        doc = {
            "schema": ARTIFACT_SCHEMA,
            "content_hash": self.content_hash(),
            "payload": self.payload(),
        }
        if self.quality:
            # Sibling of the payload, not part of it: absent for quality-less
            # builds so pre-existing artifact files round-trip byte-for-byte.
            doc["quality"] = self.quality
        if self.build_info:
            # Same sibling convention as ``quality``.
            doc["build_info"] = self.build_info
        if self.guidelines:
            # Same sibling convention as ``quality``.
            doc["guidelines"] = self.guidelines
        return doc

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "SelectionArtifact":
        try:
            schema = data["schema"]
            stored_hash = data["content_hash"]
            payload = data["payload"]
        except (KeyError, TypeError) as error:
            raise ArtifactError(
                f"not a selection artifact: missing {error}"
            ) from None
        if schema != ARTIFACT_SCHEMA:
            raise ArtifactError(
                f"artifact schema {schema!r} not supported "
                f"(expected {ARTIFACT_SCHEMA})"
            )
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        actual = hashlib.sha256(canonical.encode()).hexdigest()
        if actual != stored_hash:
            raise ArtifactError(
                f"artifact content hash mismatch: stored {stored_hash[:12]}…, "
                f"computed {actual[:12]}… — file corrupt or edited"
            )
        quality = data.get("quality")
        build_info = data.get("build_info")
        guidelines = data.get("guidelines")
        try:
            return cls(
                cluster=payload["cluster"],
                cluster_fingerprint=payload["cluster_fingerprint"],
                builder_version=payload.get("builder_version", "unknown"),
                fabric=payload.get("fabric", ""),
                entries={
                    operation: ArtifactEntry.from_dict(entry)
                    for operation, entry in payload["entries"].items()
                },
                quality=quality if isinstance(quality, dict) else {},
                build_info=build_info if isinstance(build_info, dict) else {},
                guidelines=guidelines if isinstance(guidelines, dict) else {},
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ArtifactError(f"malformed artifact payload: {error}") from error


def load_artifact(path: str | Path) -> SelectionArtifact:
    """Read and *validate* an artifact file.

    Rejects (with :class:`ArtifactError`) unreadable files, non-JSON
    content, unsupported schema versions and any payload whose content
    hash does not match the stored one.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ArtifactError(f"cannot read artifact {path}: {error}") from error
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ArtifactError(f"artifact {path} is not JSON: {error}") from error
    return SelectionArtifact.from_dict(data)


def default_proc_points(spec: ClusterSpec, step: int = 2) -> tuple[int, ...]:
    """Even grid of communicator sizes, 2 .. the cluster's capacity."""
    return tuple(range(2, spec.max_procs + 1, step)) or (2,)


def calibration_kwargs(
    *,
    procs: int | None = None,
    gamma_max_procs: int | None = None,
    sizes: Sequence[int] | None = None,
    max_reps: int = 8,
    seed: int = 0,
    screen_mad: float | None = None,
    retry_budget: int = 0,
) -> dict:
    """The calibration kwarg dict a build forwards to every pipeline.

    Shared by :func:`build_artifact` and the incremental
    :func:`~repro.tuning.recalibrate.rebuild_artifact` so a rebuild with
    the same knobs replays *exactly* the same experiment schedule — the
    property that makes a warm-cache no-drift rebuild bit-identical with
    zero simulations.
    """
    kwargs: dict = {
        "max_reps": max_reps,
        "seed": seed,
        "screen_mad": screen_mad,
        "retry_budget": retry_budget,
    }
    if procs is not None:
        kwargs["procs"] = procs
    if gamma_max_procs is not None:
        kwargs["gamma_max_procs"] = gamma_max_procs
    if sizes is not None:
        kwargs["sizes"] = tuple(sizes)
    return kwargs


def fabric_calibration_overrides(
    spec: ClusterSpec,
) -> tuple[str, dict, dict[str, list[str]]]:
    """Topology-conditioned build inputs derived from ``spec``'s fabric.

    Returns ``(fabric_name, extra calibration kwargs, per-operation
    algorithm lists)``.  Flat specs return ``("", {}, {})`` — nothing is
    added, so flat builds stay bit-identical to pre-fabric releases.  On
    a multi-level fabric the hierarchical variants join the candidate
    sets (they are excluded from the flat defaults) and the hierarchical
    models learn the rack size through ``model_params``.
    """
    fabric = spec.fabric if spec.fabric and not spec.fabric.is_flat() else None
    if fabric is None:
        return "", {}, {}
    from repro.collectives.bcast import PAPER_BCAST_ALGORITHMS
    from repro.collectives.reduce import DEFAULT_REDUCE_ALGORITHMS

    extra = {
        "model_params": {
            "group_ranks": fabric.nodes_per_rack * spec.procs_per_node
        }
    }
    per_op_algorithms = {
        "bcast": sorted((*PAPER_BCAST_ALGORITHMS, "hierarchical")),
        "reduce": sorted((*DEFAULT_REDUCE_ALGORITHMS, "hierarchical")),
    }
    return fabric.name, extra, per_op_algorithms


def stamp_guidelines(
    artifact: SelectionArtifact,
    *,
    strict: bool = False,
    slack: float | None = None,
) -> SelectionArtifact:
    """Verify performance guidelines and stamp the report on ``artifact``.

    Returns a copy carrying the :class:`~repro.tuning.guidelines.
    GuidelineReport` in its unhashed ``guidelines`` section — the content
    hash is untouched.  ``strict=True`` raises
    :class:`~repro.errors.GuidelineViolationError` instead of stamping a
    violating artifact (the packaging gate).  The import is local: the
    tuning layer depends on this module, not the other way around.
    """
    from repro.tuning.guidelines import check_guidelines, verify_guidelines

    kwargs = {} if slack is None else {"slack": slack}
    if strict:
        report = check_guidelines(artifact, **kwargs)
    else:
        report = verify_guidelines(artifact, **kwargs)
    return replace(artifact, guidelines=report.as_dict())


def build_artifact(
    spec: ClusterSpec,
    *,
    collectives: Sequence[str] = ("bcast",),
    proc_points: Sequence[int] | None = None,
    size_points: Sequence[int] = DEFAULT_SIZE_POINTS,
    platforms: Mapping[str, PlatformModel] | None = None,
    procs: int | None = None,
    gamma_max_procs: int | None = None,
    sizes: Sequence[int] | None = None,
    max_reps: int = 8,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    strict: bool = False,
    thresholds: QualityThresholds = DEFAULT_QUALITY,
    screen_mad: float | None = None,
    retry_budget: int = 0,
    batch: bool | None = None,
) -> SelectionArtifact:
    """Run the full pipeline and package the result.

    calibrate → fit per-algorithm Hockney models → build one decision
    table per collective over the ``(proc_points, size_points)`` grid →
    generate the Python decision function → freeze into a
    :class:`SelectionArtifact`.

    ``platforms`` short-circuits calibration with precomputed
    :class:`PlatformModel` objects (keyed by operation) — used by tests
    and by rebuilds from a saved calibration.  Every other entry looks up
    its :class:`~repro.estimation.registry.CalibrationPipeline` in the
    per-collective registry and calibrates through it (all pipelines run
    through ``runner``, so the build is parallel and cache-aware for
    every collective).  A calibration kwarg a pipeline neither accepts
    nor tolerates raises :class:`ArtifactError` — nothing is silently
    dropped.

    ``strict=True`` refuses to package a calibration whose fits fail the
    quality ``thresholds`` (raising :class:`ArtifactError`) — the gate
    applies uniformly to *every* pipeline's quality report, not just the
    broadcast's; fit diagnostics are recorded in the artifact's unhashed
    ``quality`` section either way.  ``screen_mad`` / ``retry_budget``
    forward to the pipelines and default off, so a vanilla build is
    bit-identical to earlier releases.

    Size-independent collectives (the barrier) get a single-column
    decision table: their selection depends on ``P`` only.

    ``batch`` overrides the runner's batched-prefetch mode for this build
    (``None`` keeps the runner's setting).  The effective mode is recorded
    in the artifact's unhashed ``build_info`` — batched and serial builds
    produce bit-identical content hashes.
    """
    runner = runner if runner is not None else default_runner()
    if batch is not None:
        runner.batch = bool(batch)
    grid_procs = (
        tuple(proc_points) if proc_points else default_proc_points(spec)
    )
    calib_kwargs = calibration_kwargs(
        procs=procs,
        gamma_max_procs=gamma_max_procs,
        sizes=sizes,
        max_reps=max_reps,
        seed=seed,
        screen_mad=screen_mad,
        retry_budget=retry_budget,
    )
    fabric_name, fabric_kwargs, per_op_algorithms = (
        fabric_calibration_overrides(spec)
    )
    calib_kwargs.update(fabric_kwargs)

    with obs.span(
        "artifact.build",
        cluster=spec.name,
        collectives=",".join(collectives),
        grid=f"{len(grid_procs)}x{len(size_points)}",
    ) as build_span:
        entries: dict[str, ArtifactEntry] = {}
        quality: dict[str, dict] = {}
        for operation in collectives:
            precomputed = platforms is not None and operation in platforms
            size_independent = False
            if not precomputed:
                pipeline = get_pipeline(operation)
                size_independent = pipeline.size_independent
            else:
                try:
                    size_independent = get_pipeline(operation).size_independent
                except ArtifactError:
                    pass
            with obs.span(
                "artifact.calibrate",
                operation=operation,
                precomputed=precomputed,
            ):
                if precomputed:
                    platform = platforms[operation]
                else:
                    op_kwargs = dict(calib_kwargs)
                    if operation in per_op_algorithms:
                        op_kwargs["algorithms"] = per_op_algorithms[operation]
                    outcome = run_pipeline(
                        spec, operation, runner=runner,
                        strict=strict, thresholds=thresholds, **op_kwargs,
                    )
                    platform = outcome.platform
                    report = outcome.quality_report()
                    if report:
                        quality[operation] = report
            grid_sizes = (0,) if size_independent else tuple(size_points)
            with obs.span("artifact.tables", operation=operation):
                selector = ModelBasedSelector(platform)
                table = build_decision_table(selector, grid_procs, grid_sizes)
            with obs.span("artifact.codegen", operation=operation):
                function_name = f"select_{operation}"
                entries[operation] = ArtifactEntry(
                    operation=operation,
                    platform=platform,
                    table=table,
                    function_name=function_name,
                    source=generate_python(table, function_name=function_name),
                )
        with obs.span("artifact.package"):
            artifact = SelectionArtifact(
                cluster=spec.name,
                cluster_fingerprint=spec.fingerprint(),
                entries=entries,
                fabric=fabric_name,
                quality=quality,
                build_info={"batch": runner.batch},
            )
            build_span.set_attr("artifact_id", artifact.artifact_id)
        with obs.span("artifact.guidelines"):
            # Strict builds refuse guideline violations the same way they
            # refuse bad fits; non-strict builds stamp the report so every
            # consumer can see it.  Either way the content hash is already
            # fixed — the report lives outside the hashed payload.
            artifact = stamp_guidelines(artifact, strict=strict)
            build_span.set_attr(
                "guideline_violations",
                len(artifact.guidelines.get("violations", ())),
            )
        return artifact


class ArtifactRegistry:
    """The artifacts a server is willing to answer for.

    Backed by a directory of ``*.json`` artifact files (plus any paths
    registered directly).  Loading is strict — an invalid file is skipped
    and recorded in :attr:`errors`, never silently served.  Lookup is by
    ``(cluster, operation)``; when several artifacts cover the same pair
    the lexically last file wins (deterministic across rescans).

    **Degraded mode.**  When a *rescan* finds that a previously-served
    file is now invalid (tampered, truncated mid-write, wrong hash), the
    last-known-good copy keeps serving and the file is recorded in
    :attr:`degraded` — a corrupt reload must never take working decisions
    away from clients.  A file that was never valid is only an error; a
    file that was *deleted* drops out (removal is an operator action,
    corruption is not).
    """

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory else None
        self.artifacts: dict[str, SelectionArtifact] = {}
        self.errors: dict[str, str] = {}
        #: Files currently served from their last-known-good copy, mapped
        #: to the error that made the on-disk version unloadable.
        self.degraded: dict[str, str] = {}
        #: Bumped on every reindex (rescan, add).  Caches keyed on
        #: registry content — the service's LRU and its compiled flat
        #: tables — compare this to detect *any* swap path, including
        #: ones that bypass :meth:`SelectionService.reload` (a
        #: ``SelfTuner.recalibrate`` hot reload, a direct ``rescan()``).
        self.generation = 0
        self._by_query: dict[tuple[str, str, str], SelectionArtifact] = {}
        if self.directory is not None:
            self.rescan()

    def rescan(self) -> None:
        """Reload every artifact from the directory (hot reload)."""
        if self.directory is None:
            return
        artifacts: dict[str, SelectionArtifact] = {}
        errors: dict[str, str] = {}
        degraded: dict[str, str] = {}
        if not self.directory.is_dir():
            raise ArtifactError(
                f"artifact directory {self.directory} does not exist"
            )
        for path in sorted(self.directory.glob("*.json")):
            try:
                artifact = load_artifact(path)
            except ArtifactError as error:
                errors[path.name] = str(error)
                previous = self.artifacts.get(path.name)
                if previous is not None:
                    artifacts[path.name] = previous
                    degraded[path.name] = str(error)
                continue
            artifacts[path.name] = artifact
        self.artifacts = artifacts
        self.errors = errors
        self.degraded = degraded
        self._reindex()

    def add(self, artifact: SelectionArtifact, name: str | None = None) -> None:
        """Register an in-memory artifact (tests, embedded use)."""
        self.artifacts[name or artifact.artifact_id] = artifact
        self._reindex()

    def _reindex(self) -> None:
        index: dict[tuple[str, str, str], SelectionArtifact] = {}
        for _name, artifact in sorted(self.artifacts.items()):
            for operation in artifact.operations:
                index[(artifact.cluster, artifact.fabric, operation)] = artifact
        self._by_query = index
        self.generation += 1

    def __len__(self) -> int:
        return len(self.artifacts)

    def lookup(
        self, cluster: str, operation: str, fabric: str = ""
    ) -> SelectionArtifact:
        """The artifact serving ``(cluster, fabric, operation)``.

        ``fabric=""`` selects flat-cluster artifacts (the pre-fabric
        behaviour).  Raises :class:`ArtifactError` when nothing covers
        the triple.
        """
        try:
            return self._by_query[(cluster, fabric, operation)]
        except KeyError:
            known = sorted(
                f"{cluster}/{operation}" + (f"@{fab}" if fab else "")
                for cluster, fab, operation in self._by_query
            )
            wanted = f"cluster {cluster!r} operation {operation!r}" + (
                f" fabric {fabric!r}" if fabric else ""
            )
            raise ArtifactError(
                f"no artifact for {wanted}; "
                f"serving: {', '.join(known) or '<none>'}"
            ) from None

    def summaries(self) -> list[dict]:
        """Listing view for ``GET /artifacts``."""
        return [
            dict(self.artifacts[name].summary(), file=name)
            for name in sorted(self.artifacts)
        ]
