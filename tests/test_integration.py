"""End-to-end integration tests: the paper's pipeline on the test cluster.

calibrate -> select -> compare against the measured oracle and the Open MPI
fixed decision function.  These are the small-scale versions of the Table 3
and Fig. 5 benchmarks.
"""

import pytest

from repro.clusters import MINICLUSTER
from repro.selection import (
    MeasuredOracle,
    ModelBasedSelector,
    OmpiFixedSelector,
)
from repro.units import KiB, MiB, log_spaced_sizes

SIZES = log_spaced_sizes(8 * KiB, 1 * MiB, 6)
PROCS = 14  # deliberately different from the calibration's 8 processes


@pytest.fixture(scope="module")
def oracle():
    return MeasuredOracle(MINICLUSTER, max_reps=3)


class TestModelBasedSelectionQuality:
    def test_selection_close_to_optimal_across_sizes(self, mini_platform, oracle):
        """The paper's headline: model-based picks are near-optimal.

        On Grisou the paper reports <= 3% degradation, on Gros <= 10%
        (clusters where the algorithms separate by factors).  The 16-node
        test cluster is latency-dominated and all tree algorithms sit
        within ~30% of each other, so mis-picks are cheap in absolute terms
        but look large in percent; allow 40% at any single size and 20% on
        average here.  The paper-scale thresholds are asserted by the
        Table 3 benchmark on the Grisou/Gros presets.
        """
        selector = ModelBasedSelector(mini_platform)
        degradations = []
        for nbytes in SIZES:
            choice = selector.select(PROCS, nbytes)
            degradations.append(oracle.degradation(PROCS, nbytes, choice))
        assert max(degradations) < 40.0
        assert sum(degradations) / len(degradations) < 20.0

    def test_model_based_never_picks_pathological_algorithm(
        self, mini_platform, oracle
    ):
        """The selected algorithm is never multiple times slower than best."""
        selector = ModelBasedSelector(mini_platform)
        for nbytes in SIZES:
            choice = selector.select(PROCS, nbytes)
            assert oracle.degradation(PROCS, nbytes, choice) < 120.0

    def test_beats_or_matches_ompi_on_average(self, mini_platform, oracle):
        """Across the sweep, the model-based selection accumulates less
        degradation than the hard-coded Open MPI decision function."""
        model_selector = ModelBasedSelector(mini_platform)
        ompi_selector = OmpiFixedSelector()
        model_total = 0.0
        ompi_total = 0.0
        for nbytes in SIZES:
            model_total += oracle.degradation(
                PROCS, nbytes, model_selector.select(PROCS, nbytes)
            )
            ompi_total += oracle.degradation(
                PROCS, nbytes, ompi_selector.select(PROCS, nbytes)
            )
        assert model_total <= ompi_total


class TestCrossScaleGeneralisation:
    def test_calibrated_at_8_predicts_at_16(self, mini_platform, oracle):
        """Parameters fitted at half the cluster select well at full size
        (the paper calibrates at P=40 and selects at P=50..90)."""
        selector = ModelBasedSelector(mini_platform)
        for nbytes in (32 * KiB, 512 * KiB):
            choice = selector.select(16, nbytes)
            assert oracle.degradation(16, nbytes, choice) < 30.0


class TestDecisionTableDeployment:
    def test_precomputed_table_agrees_with_live_selector(self, mini_platform):
        from repro.selection import build_decision_table

        selector = ModelBasedSelector(mini_platform)
        table = build_decision_table(selector, [4, 8, 12, 16], SIZES)
        for procs in (4, 8, 12, 16):
            for nbytes in SIZES:
                assert table.select(procs, nbytes) == selector.select(procs, nbytes)


class TestReproducibility:
    def test_full_pipeline_deterministic(self):
        from repro.estimation.workflow import calibrate_platform

        def run():
            result = calibrate_platform(
                MINICLUSTER,
                procs=6,
                sizes=[8 * KiB, 64 * KiB, 256 * KiB],
                gamma_max_procs=4,
                max_reps=3,
                seed=11,
            )
            return result.platform.to_dict()

        assert run() == run()
