"""A simulated MPI runtime.

This package provides just enough of MPI's point-to-point machinery to host
faithful re-implementations of Open MPI's collective algorithms:

* non-blocking ``isend``/``irecv`` with ``wait``/``waitall``/``waitany``;
* tag matching with MPI's non-overtaking guarantee, wildcard source/tag,
  and an unexpected-message queue;
* eager and rendezvous protocols selected by message size;
* communicators over arbitrary subsets of ranks.

Simulated ranks are coroutines (see :mod:`repro.sim.engine`); every blocking
MPI call is a sub-generator that the rank's body delegates to with
``yield from``::

    def body(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1024, tag=7)
        else:
            status = yield from comm.recv(0, tag=7)
"""

from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, Communicator, MpiWorld
from repro.mpi.requests import Request, Status
from repro.mpi.segmentation import SegmentPlan, plan_segments

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MpiWorld",
    "Request",
    "SegmentPlan",
    "Status",
    "plan_segments",
]
