"""Self-tuning: guideline verification, drift detection, recalibration.

The robustness loop around the paper's model-based selection (see
docs/ROBUSTNESS.md, "Self-tuning loop"):

* :mod:`repro.tuning.guidelines` — Hunold-style performance-guideline
  invariants verified against every packaged artifact;
* :mod:`repro.tuning.drift` — online sampling of served decisions and a
  windowed CUSUM over their measured regret;
* :mod:`repro.tuning.recalibrate` — incremental, cache-warm rebuild of
  only the affected collectives;
* :mod:`repro.tuning.diff` — per-cell decision diffs between artifact
  versions;
* :mod:`repro.tuning.tuner` — the :class:`SelfTuner` closing the loop
  against a live selection service.
"""

from repro.tuning.diff import (
    ArtifactDiff,
    CellDelta,
    diff_artifacts,
    format_diff,
)
from repro.tuning.drift import (
    DriftConfig,
    DriftDetector,
    QuerySampler,
    SampledQuery,
)
from repro.tuning.guidelines import (
    DEFAULT_SLACK,
    Guideline,
    GuidelineReport,
    GuidelineViolation,
    check_guidelines,
    default_guidelines,
    register_guideline,
    registered_guidelines,
    unregister_guideline,
    verify_guidelines,
)
from repro.tuning.recalibrate import rebuild_artifact
from repro.tuning.tuner import SelfTuner

__all__ = [
    "ArtifactDiff",
    "CellDelta",
    "DEFAULT_SLACK",
    "DriftConfig",
    "DriftDetector",
    "Guideline",
    "GuidelineReport",
    "GuidelineViolation",
    "QuerySampler",
    "SampledQuery",
    "SelfTuner",
    "check_guidelines",
    "default_guidelines",
    "diff_artifacts",
    "format_diff",
    "rebuild_artifact",
    "register_guideline",
    "registered_guidelines",
    "unregister_guideline",
    "verify_guidelines",
]
