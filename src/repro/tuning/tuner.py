"""The self-tuning loop: sample → replay → detect → recalibrate → reload.

:class:`SelfTuner` closes the loop around a running
:class:`~repro.service.server.SelectionService`:

1. **Sample** — a :class:`~repro.tuning.drift.QuerySampler` captures
   every N-th served ``/select`` decision off the obs span stream.
2. **Replay** — each sample is re-measured against a
   :class:`~repro.selection.oracle.MeasuredOracle` on the *reality* spec
   (production: the live platform; tests: a chaos-drifted spec), giving
   the relative regret of the served decision.
3. **Detect** — one :class:`~repro.tuning.drift.DriftDetector` per
   collective accumulates the regret; a fired CUSUM means the packaged
   model no longer describes the platform.
4. **Recalibrate** — only the fired collectives are rebuilt
   (:func:`~repro.tuning.recalibrate.rebuild_artifact`) on the reality
   spec, guideline-gated, saved over the served artifact file and
   hot-reloaded through the service's degraded-safe reload path.

A failed rebuild never degrades serving below last-known-good: the old
artifact file is untouched, the registry keeps answering from it, and
the service reports degraded (``repro_service_degraded``) until a later
rebuild succeeds.  Everything is deterministic and cache-aware: a
no-drift recalibration replays the original experiment schedule from the
warm result cache — zero simulations, unchanged content hash, no reload
churn.
"""

from __future__ import annotations

from pathlib import Path

from repro.clusters.spec import ClusterSpec
from repro.errors import ReproError, TuningError
from repro.exec.runner import ParallelRunner, default_runner
from repro.selection.oracle import MeasuredOracle
from repro.tuning.drift import DriftConfig, DriftDetector, QuerySampler
from repro.tuning.recalibrate import rebuild_artifact

__all__ = ["SelfTuner"]


class SelfTuner:
    """Drift-driven incremental recalibration for one served artifact.

    ``service`` is the live :class:`~repro.service.server.
    SelectionService`; ``artifact`` the currently served artifact and
    ``artifact_file`` its filename inside the registry directory (where
    rebuilds are written).  ``spec`` is the cluster the artifact was
    built for; :meth:`set_reality` swaps in the platform samples are
    replayed (and rebuilds calibrated) against.  ``calib_kwargs`` must
    echo the original build's calibration knobs (``procs``, ``sizes``,
    ``max_reps``, ``seed``, ...) so a no-drift rebuild is bit-identical.

    The tuner is driven, not threaded: call :meth:`step` from whatever
    cadence the deployment wants (a timer, a request-count hook, a test).
    """

    def __init__(
        self,
        service,
        artifact,
        spec: ClusterSpec,
        *,
        artifact_file: str | None = None,
        calib_kwargs: dict | None = None,
        drift_config: DriftConfig | None = None,
        sampler: QuerySampler | None = None,
        runner: ParallelRunner | None = None,
        strict: bool = True,
        oracle_max_reps: int = 8,
        oracle_seed: int = 0,
    ):
        if artifact_file is None and service.registry.directory is None:
            raise TuningError(
                "recalibration needs a file-backed registry: pass "
                "artifact_file or use an ArtifactRegistry with a directory"
            )
        self.service = service
        self.artifact = artifact
        self.spec = spec
        self.artifact_file = artifact_file or f"{artifact.cluster}.json"
        self.calib_kwargs = dict(calib_kwargs or {})
        self.drift_config = drift_config or DriftConfig()
        # Explicit None check: an empty QuerySampler is falsy (len() == 0),
        # so ``sampler or QuerySampler()`` would discard the caller's one.
        self.sampler = sampler if sampler is not None else QuerySampler()
        self.runner = runner if runner is not None else default_runner()
        self.strict = strict
        self.oracle_max_reps = oracle_max_reps
        self.oracle_seed = oracle_seed
        self.detectors: dict[str, DriftDetector] = {}
        self.recalibrations = 0
        self.failed_recalibrations = 0
        self.last_error: str | None = None
        self._reality = spec
        self._oracles: dict[str, MeasuredOracle] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self) -> "SelfTuner":
        """Hook into the service: sampling on, /healthz gains ``tuning``."""
        self.sampler.attach()
        self.service.sampler = self.sampler
        self.service.tuner = self
        return self

    def detach(self) -> None:
        self.sampler.detach()
        if self.service.sampler is self.sampler:
            self.service.sampler = None
        if self.service.tuner is self:
            self.service.tuner = None

    def __enter__(self) -> "SelfTuner":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def set_reality(self, spec: ClusterSpec) -> None:
        """Replay samples (and calibrate rebuilds) against ``spec``.

        Production keeps reality == build spec (the platform *is* the
        truth); tests hand in a chaos-drifted spec to simulate the
        platform changing under a live service.
        """
        self._reality = spec
        self._oracles.clear()

    def _oracle(self, operation: str) -> MeasuredOracle:
        oracle = self._oracles.get(operation)
        if oracle is None:
            oracle = MeasuredOracle(
                self._reality,
                operation=operation,
                max_reps=self.oracle_max_reps,
                seed=self.oracle_seed,
                runner=self.runner,
            )
            self._oracles[operation] = oracle
        return oracle

    def _detector(self, operation: str) -> DriftDetector:
        detector = self.detectors.get(operation)
        if detector is None:
            detector = DriftDetector(self.drift_config)
            self.detectors[operation] = detector
        return detector

    # -- the loop ----------------------------------------------------------

    def observe(self) -> int:
        """Replay all buffered samples; returns how many were consumed."""
        metrics = self.service.metrics
        samples = self.sampler.drain()
        for sample in samples:
            detector = self._detector(sample.operation)
            oracle = self._oracle(sample.operation)
            _best, best_time = oracle.best(sample.procs, sample.nbytes)
            if best_time <= 0:
                continue  # degenerate cell (m = 0 no-op): no regret defined
            served_time = oracle.measure(
                sample.procs, sample.nbytes,
                sample.algorithm, sample.segment_size,
            )
            error = (served_time - best_time) / best_time
            was_fired = detector.fired
            detector.update(error)
            metrics.drift_samples.inc(operation=sample.operation)
            metrics.drift_error.set(
                detector.mean_error(), operation=sample.operation
            )
            metrics.drift_cusum.set(detector.cusum, operation=sample.operation)
            if detector.fired and not was_fired:
                metrics.drift_triggers.inc(operation=sample.operation)
        return len(samples)

    def fired_operations(self) -> list[str]:
        return sorted(
            operation
            for operation, detector in self.detectors.items()
            if detector.fired
        )

    def step(self) -> dict:
        """One loop iteration: observe, recalibrate if triggered."""
        self.observe()
        fired = self.fired_operations()
        if fired:
            self.recalibrate(fired)
        return self.health()

    def recalibrate(self, operations) -> bool:
        """Rebuild ``operations`` on the reality spec and hot-reload.

        Returns True when the rebuilt artifact is verified, saved and
        *served*.  On any failure — calibration error, quality gate,
        guideline refusal, packaging self-check, a reload that cannot
        pick the file up — the previous artifact keeps serving, the
        service flips to degraded, and the failure is recorded; a later
        successful recalibration clears the condition.
        """
        operations = sorted(operations)
        metrics = self.service.metrics
        try:
            rebuilt = rebuild_artifact(
                self.artifact,
                self._reality,
                operations,
                runner=self.runner,
                strict=self.strict,
                **self.calib_kwargs,
            )
            rebuilt.verify()
            directory = self.service.registry.directory
            if directory is None:
                raise TuningError(
                    "artifact registry has no directory to write rebuilds to"
                )
            rebuilt.save(Path(directory) / self.artifact_file)
            self.service.reload()
            serving = self.service.registry.lookup(
                rebuilt.cluster, operations[0], rebuilt.fabric
            )
            if serving.content_hash() != rebuilt.content_hash():
                raise TuningError(
                    f"reload did not pick up rebuilt artifact "
                    f"{rebuilt.artifact_id}: serving "
                    f"{serving.artifact_id}"
                )
        except ReproError as error:
            self.failed_recalibrations += 1
            self.last_error = str(error)
            for operation in operations:
                metrics.recalibrations.inc(
                    operation=operation, outcome="failed"
                )
            # The registry still serves last-known-good — say so the same
            # way a corrupt-reload does, so probes and dashboards treat
            # "cannot recalibrate away from a drifted model" as degraded.
            self.service.degraded_reason = (
                f"self-tuning: recalibration failed: {error}"
            )
            metrics.degraded.set(1.0)
            return False
        self.artifact = rebuilt
        self.recalibrations += 1
        self.last_error = None
        for operation in operations:
            metrics.recalibrations.inc(operation=operation, outcome="ok")
            detector = self.detectors.get(operation)
            if detector is not None:
                detector.reset()
        metrics.guideline_violations.set(
            len(rebuilt.guidelines.get("violations", ()))
        )
        return True

    # -- reporting ---------------------------------------------------------

    def health(self) -> dict:
        """The ``tuning`` block of ``/healthz``."""
        health = {
            "artifact": self.artifact.artifact_id,
            "sampled": self.sampler.sampled,
            "pending_samples": len(self.sampler),
            "detectors": {
                operation: self.detectors[operation].state()
                for operation in sorted(self.detectors)
            },
            "recalibrations": self.recalibrations,
            "failed_recalibrations": self.failed_recalibrations,
        }
        if self.last_error is not None:
            health["last_error"] = self.last_error
        return health
