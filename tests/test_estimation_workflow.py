"""Tests for the end-to-end calibration workflow and PlatformModel."""

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import EstimationError
from repro.estimation.workflow import PlatformModel, calibrate_platform
from repro.models.gamma import GammaFunction
from repro.models.hockney import HockneyParams
from repro.units import KiB


class TestCalibration:
    def test_calibrates_all_six_algorithms(self, mini_calibration):
        assert sorted(mini_calibration.platform.algorithms) == [
            "binary",
            "binomial",
            "chain",
            "k_chain",
            "linear",
            "split_binary",
        ]

    def test_gamma_estimate_attached(self, mini_calibration):
        assert mini_calibration.gamma_estimate.table[2] == 1.0

    def test_alpha_beta_per_algorithm(self, mini_calibration):
        for name, estimate in mini_calibration.alpha_beta.items():
            assert estimate.algorithm == name
            # The effective segment cost is what the models consume.
            assert estimate.params.p2p_time(8 * 1024) > 0

    def test_predictions_positive_and_finite(self, mini_platform):
        for name, predicted in mini_platform.predict_all(12, 256 * KiB).items():
            assert predicted > 0, name

    def test_p2p_estimation_mode(self):
        result = calibrate_platform(
            MINICLUSTER,
            estimation="p2p",
            sizes=[8 * KiB, 64 * KiB, 256 * KiB],
            gamma_max_procs=4,
        )
        params = set(
            (p.alpha, p.beta) for p in result.platform.parameters.values()
        )
        assert len(params) == 1  # one shared ping-pong fit
        assert result.p2p_estimate is not None

    def test_traditional_family_mode(self):
        result = calibrate_platform(
            MINICLUSTER,
            model_family="traditional",
            sizes=[8 * KiB, 64 * KiB, 256 * KiB],
            gamma_max_procs=4,
            algorithms=["binomial", "chain"],
        )
        assert result.platform.model_family == "traditional"
        assert sorted(result.platform.algorithms) == ["binomial", "chain"]

    def test_unknown_estimation_rejected(self):
        with pytest.raises(EstimationError):
            calibrate_platform(MINICLUSTER, estimation="magic")

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            calibrate_platform(MINICLUSTER, model_family="quantum")


class TestPlatformModel:
    def make_platform(self):
        return PlatformModel(
            cluster="toy",
            segment_size=8 * KiB,
            gamma=GammaFunction({3: 1.1, 4: 1.2}),
            parameters={
                "binomial": HockneyParams(1e-6, 1e-9),
                "chain": HockneyParams(2e-6, 2e-9),
            },
        )

    def test_predict_uses_per_algorithm_parameters(self):
        platform = self.make_platform()
        binomial = platform.predict("binomial", 16, 64 * KiB)
        chain = platform.predict("chain", 16, 64 * KiB)
        assert binomial != chain

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(EstimationError, match="no parameters"):
            self.make_platform().predict("linear", 8, 1024)

    def test_segment_size_override(self):
        platform = self.make_platform()
        default = platform.predict("chain", 16, 256 * KiB)
        coarse = platform.predict("chain", 16, 256 * KiB, segment_size=64 * KiB)
        assert default != coarse

    def test_model_instances_cached(self):
        platform = self.make_platform()
        assert platform.model_for("chain") is platform.model_for("chain")

    def test_json_round_trip(self, tmp_path):
        platform = self.make_platform()
        path = tmp_path / "platform.json"
        platform.save(path)
        loaded = PlatformModel.load(path)
        assert loaded.cluster == platform.cluster
        assert loaded.segment_size == platform.segment_size
        assert loaded.parameters == platform.parameters
        assert loaded.gamma.table == platform.gamma.table
        # And it predicts identically.
        assert loaded.predict("chain", 16, 64 * KiB) == pytest.approx(
            platform.predict("chain", 16, 64 * KiB)
        )

    def test_invalid_family_rejected(self):
        with pytest.raises(EstimationError):
            PlatformModel(
                cluster="toy",
                segment_size=8 * KiB,
                gamma=GammaFunction.ideal(),
                parameters={},
                model_family="bogus",
            )
