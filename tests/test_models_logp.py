"""Tests for the LogP-family comparator models (related work §2.2)."""

import pytest

from repro.models.logp import LogGPParams, LogPParams, PLogPParams


class TestLogP:
    def make(self):
        return LogPParams(latency=5e-6, send_overhead=1e-6, recv_overhead=1e-6, gap=2e-6)

    def test_p2p_time_ignores_size(self):
        params = self.make()
        assert params.p2p_time(0) == params.p2p_time(10_000) == pytest.approx(7e-6)

    def test_issue_interval_is_max_of_gap_and_overhead(self):
        params = self.make()
        assert params.issue_interval() == pytest.approx(2e-6)
        fast_net = LogPParams(5e-6, 3e-6, 1e-6, 2e-6)
        assert fast_net.issue_interval() == pytest.approx(3e-6)

    def test_linear_bcast_structure(self):
        """The LogP view of the paper's gamma experiment: the root's sends
        are spaced by the gap, the latency overlaps."""
        params = self.make()
        t2 = params.linear_bcast_time(2)
        t7 = params.linear_bcast_time(7)
        assert t7 - t2 == pytest.approx(5 * params.issue_interval())
        assert params.linear_bcast_time(1) == 0.0

    def test_gamma_like_ratio_is_modest(self):
        """LogP predicts the same shape as measured gamma: well below P-1."""
        params = self.make()
        ratio = params.linear_bcast_time(7) / params.linear_bcast_time(2)
        assert 1.0 < ratio < 6.0


class TestLogGP:
    def make(self):
        return LogGPParams(
            latency=5e-6,
            send_overhead=1e-6,
            recv_overhead=1e-6,
            gap=2e-6,
            gap_per_byte=1e-9,
        )

    def test_p2p_linear_in_size(self):
        params = self.make()
        small = params.p2p_time(1)
        big = params.p2p_time(100_001)
        assert big - small == pytest.approx(100_000 * 1e-9)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            self.make().p2p_time(-1)

    def test_hockney_degeneration(self):
        """LogGP collapses to Hockney with alpha = os + L + or, beta = G."""
        params = self.make()
        hockney = params.to_hockney()
        assert hockney.alpha == pytest.approx(7e-6)
        assert hockney.beta == pytest.approx(1e-9)
        # And the predictions agree up to the (m-1) vs m convention.
        assert hockney.p2p_time(10_000) == pytest.approx(
            params.p2p_time(10_000), rel=1e-3
        )


class TestPLogP:
    def make(self):
        return PLogPParams(
            latency=5e-6,
            os_fn=lambda m: 1e-6 + 0.1e-9 * m,
            or_fn=lambda m: 1e-6 + 0.1e-9 * m,
            g_fn=lambda m: 2e-6 + 1e-9 * m,
        )

    def test_p2p_time_is_latency_plus_gap(self):
        params = self.make()
        assert params.p2p_time(1000) == pytest.approx(5e-6 + 2e-6 + 1e-6)

    def test_size_dependence(self):
        params = self.make()
        assert params.p2p_time(100_000) > params.p2p_time(100)

    def test_saturation_rate(self):
        params = self.make()
        assert params.saturation_rate(0) == pytest.approx(1 / 2e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            self.make().p2p_time(-5)
