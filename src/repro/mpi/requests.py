"""MPI request and status objects for the simulated runtime."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Future, Simulator


@dataclass(frozen=True)
class Status:
    """Completion information of a receive (mirrors ``MPI_Status``)."""

    source: int
    tag: int
    nbytes: int


class Request(Future):
    """A pending non-blocking operation; completes with a :class:`Status`.

    Send requests complete with a :class:`Status` describing the message
    they sent (for symmetry); receive requests complete with the matched
    message's envelope data.
    """

    __slots__ = ("kind", "rank", "peer", "tag", "nbytes")

    def __init__(
        self,
        sim: Simulator,
        kind: str,
        rank: int,
        peer: int,
        tag: int,
        nbytes: int,
    ):
        super().__init__(sim)
        self.kind = kind
        self.rank = rank
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return (
            f"<Request {self.kind} rank={self.rank} peer={self.peer} "
            f"tag={self.tag} nbytes={self.nbytes} {state}>"
        )
