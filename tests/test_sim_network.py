"""Tests for the fabric model: NIC serialisation, latency, timings."""

import pytest

from repro.errors import SimulationError
from repro.sim.network import Fabric, Host, NetworkParams, TransferTiming

PARAMS = NetworkParams(
    latency=40e-6,
    byte_time_out=1e-9,
    byte_time_in=1e-9,
    per_message_overhead=2e-6,
    send_overhead=1e-6,
    recv_overhead=1e-6,
    eager_limit=32 * 1024,
    control_latency=30e-6,
    shm_latency=1e-6,
    shm_byte_time=0.1e-9,
)


def make_fabric(nodes=4, ports=1):
    return Fabric(params=PARAMS, num_nodes=nodes, ports_per_node=ports)


class TestNetworkParams:
    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            NetworkParams(
                latency=-1.0,
                byte_time_out=1e-9,
                byte_time_in=1e-9,
                per_message_overhead=0,
                send_overhead=0,
                recv_overhead=0,
                eager_limit=0,
                control_latency=0,
                shm_latency=0,
                shm_byte_time=0,
            )

    def test_negative_eager_limit_rejected(self):
        with pytest.raises(ValueError):
            NetworkParams(
                latency=1e-6,
                byte_time_out=1e-9,
                byte_time_in=1e-9,
                per_message_overhead=0,
                send_overhead=0,
                recv_overhead=0,
                eager_limit=-1,
                control_latency=0,
                shm_latency=0,
                shm_byte_time=0,
            )


class TestSingleTransfer:
    def test_timing_decomposition(self):
        fabric = make_fabric()
        timing = fabric.transfer(0, 1, 1000, ready=0.0)
        inject = PARAMS.per_message_overhead + 1000 * PARAMS.byte_time_out
        assert timing.inject_start == 0.0
        assert timing.inject_end == pytest.approx(inject)
        assert timing.deliver == pytest.approx(
            inject + PARAMS.latency + 1000 * PARAMS.byte_time_in
        )

    def test_zero_byte_message_costs_overhead_and_latency(self):
        fabric = make_fabric()
        timing = fabric.transfer(0, 1, 0, ready=0.0)
        assert timing.inject_end == pytest.approx(PARAMS.per_message_overhead)
        assert timing.deliver == pytest.approx(
            PARAMS.per_message_overhead + PARAMS.latency
        )

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            make_fabric().transfer(0, 1, -1, ready=0.0)

    def test_ready_time_offsets_everything(self):
        fabric = make_fabric()
        base = fabric.transfer(0, 1, 500, ready=0.0)
        fabric.reset()
        later = fabric.transfer(0, 1, 500, ready=7.0)
        assert later.deliver == pytest.approx(base.deliver + 7.0)


class TestEgressSerialisation:
    """The mechanism behind the paper's gamma(P) > 1."""

    def test_concurrent_sends_serialise_injection(self):
        fabric = make_fabric()
        first = fabric.transfer(0, 1, 8192, ready=0.0)
        second = fabric.transfer(0, 2, 8192, ready=0.0)
        assert second.inject_start == pytest.approx(first.inject_end)

    def test_latency_overlaps_across_destinations(self):
        fabric = make_fabric()
        first = fabric.transfer(0, 1, 8192, ready=0.0)
        second = fabric.transfer(0, 2, 8192, ready=0.0)
        inject = PARAMS.per_message_overhead + 8192 * PARAMS.byte_time_out
        # Delivery gap is one injection time, not one full p2p time.
        assert second.deliver - first.deliver == pytest.approx(inject)

    def test_linear_broadcast_delivery_schedule(self):
        fabric = make_fabric(nodes=8)
        deliveries = [
            fabric.transfer(0, peer, 8192, ready=0.0).deliver
            for peer in range(1, 8)
        ]
        inject = PARAMS.per_message_overhead + 8192 * PARAMS.byte_time_out
        for k, deliver in enumerate(deliveries, start=1):
            assert deliver == pytest.approx(
                k * inject + PARAMS.latency + 8192 * PARAMS.byte_time_in
            )


class TestIngressSerialisation:
    """The mechanism behind the linear gather model (paper Eq. 8)."""

    def test_simultaneous_arrivals_drain_serially(self):
        fabric = make_fabric(nodes=8)
        deliveries = sorted(
            fabric.transfer(src, 0, 8192, ready=0.0).deliver
            for src in range(1, 8)
        )
        drain = 8192 * PARAMS.byte_time_in
        for earlier, later in zip(deliveries, deliveries[1:]):
            assert later - earlier == pytest.approx(drain)


class TestMultiPort:
    def test_distinct_ports_do_not_contend(self):
        fabric = make_fabric(ports=2)
        first = fabric.transfer(0, 1, 8192, ready=0.0, src_port=0)
        second = fabric.transfer(0, 2, 8192, ready=0.0, src_port=1)
        assert first.inject_start == second.inject_start == 0.0

    def test_same_port_still_serialises(self):
        fabric = make_fabric(ports=2)
        first = fabric.transfer(0, 1, 8192, ready=0.0, src_port=1)
        second = fabric.transfer(0, 2, 8192, ready=0.0, src_port=1)
        assert second.inject_start == pytest.approx(first.inject_end)

    def test_host_rejects_zero_ports(self):
        with pytest.raises(SimulationError):
            Host(0, ports=0)


class TestIntraNode:
    def test_shared_memory_path_bypasses_nic(self):
        fabric = make_fabric()
        timing = fabric.transfer(2, 2, 10_000, ready=0.0)
        assert timing.deliver == pytest.approx(
            10_000 * PARAMS.shm_byte_time + PARAMS.shm_latency
        )
        # NIC clocks untouched.
        assert fabric.hosts[2].egress[0].free_at == 0.0

    def test_shm_much_faster_than_network(self):
        fabric = make_fabric()
        shm = fabric.transfer(1, 1, 8192, ready=0.0).deliver
        net = fabric.transfer(0, 1, 8192, ready=0.0).deliver
        assert shm < net / 10


class TestControlMessages:
    def test_control_pays_latency_only(self):
        fabric = make_fabric()
        arrival = fabric.control_transfer(0, 1, ready=5.0)
        assert arrival == pytest.approx(5.0 + PARAMS.control_latency)

    def test_intra_node_control_uses_shm_latency(self):
        fabric = make_fabric()
        arrival = fabric.control_transfer(3, 3, ready=0.0)
        assert arrival == pytest.approx(PARAMS.shm_latency)


class TestAccounting:
    def test_counters_and_reset(self):
        fabric = make_fabric()
        fabric.transfer(0, 1, 100, ready=0.0)
        fabric.transfer(1, 2, 200, ready=0.0)
        assert fabric.bytes_transferred == 300
        assert fabric.messages_transferred == 2
        fabric.reset()
        assert fabric.bytes_transferred == 0
        assert fabric.hosts[0].egress[0].free_at == 0.0

    def test_transfer_timing_monotonicity_enforced(self):
        with pytest.raises(SimulationError):
            TransferTiming(inject_start=2.0, inject_end=1.0, deliver=3.0)


class TestDegradation:
    def test_egress_slowdown_scales_injection(self):
        slow = Fabric(params=PARAMS, num_nodes=3, degradation={0: 4.0})
        fast = Fabric(params=PARAMS, num_nodes=3)
        slow_t = slow.transfer(0, 1, 8192, ready=0.0)
        fast_t = fast.transfer(0, 1, 8192, ready=0.0)
        assert slow_t.inject_end == pytest.approx(4.0 * fast_t.inject_end)

    def test_ingress_unaffected_by_degradation(self):
        """Degradation is egress-only: receiving at a sick node is normal."""
        slow = Fabric(params=PARAMS, num_nodes=3, degradation={1: 4.0})
        fast = Fabric(params=PARAMS, num_nodes=3)
        assert slow.transfer(0, 1, 8192, ready=0.0).deliver == pytest.approx(
            fast.transfer(0, 1, 8192, ready=0.0).deliver
        )

    def test_unknown_node_rejected(self):
        with pytest.raises(SimulationError):
            Fabric(params=PARAMS, num_nodes=2, degradation={5: 2.0})

    def test_speedup_factor_rejected(self):
        with pytest.raises(SimulationError):
            Fabric(params=PARAMS, num_nodes=2, degradation={0: 0.5})

    def test_cluster_spec_plumbs_slow_nodes(self):
        from repro.clusters import MINICLUSTER

        sick = MINICLUSTER.with_slow_nodes({3: 8.0})
        world = sick.make_world(8)
        assert world.fabric.degradation == {3: 8.0}
        # The base preset is untouched.
        assert MINICLUSTER.slow_nodes == {}

    def test_straggler_hurts_chain_more_than_binary(self):
        from repro.clusters import MINICLUSTER
        from repro.measure import time_bcast
        from repro.topology import build_binary_tree
        from repro.units import KiB

        procs = 16
        leaf = build_binary_tree(procs).leaves()[3]
        sick = MINICLUSTER.with_slow_nodes({leaf: 20.0})
        chain_ratio = time_bcast(sick, "chain", procs, 512 * KiB, 8 * KiB) / (
            time_bcast(MINICLUSTER, "chain", procs, 512 * KiB, 8 * KiB)
        )
        binary_ratio = time_bcast(sick, "binary", procs, 512 * KiB, 8 * KiB) / (
            time_bcast(MINICLUSTER, "binary", procs, 512 * KiB, 8 * KiB)
        )
        assert binary_ratio < 1.05  # leaf sends nothing
        assert chain_ratio > 1.5  # every byte passes the sick egress
