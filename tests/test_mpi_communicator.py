"""Tests for world construction and subgroup communicators."""

import pytest

from repro.errors import MpiError
from repro.mpi.communicator import MpiWorld
from repro.sim.engine import Simulator
from repro.sim.network import Fabric, NetworkParams

PARAMS = NetworkParams(
    latency=5e-6,
    byte_time_out=1e-9,
    byte_time_in=1e-9,
    per_message_overhead=0.5e-6,
    send_overhead=0.2e-6,
    recv_overhead=0.2e-6,
    eager_limit=64 * 1024,
    control_latency=4e-6,
    shm_latency=0.3e-6,
    shm_byte_time=0.05e-9,
)


def make_world(procs=6):
    fabric = Fabric(params=PARAMS, num_nodes=procs)
    return MpiWorld(Simulator(), fabric, list(range(procs)))


class TestWorldConstruction:
    def test_empty_world_rejected(self):
        fabric = Fabric(params=PARAMS, num_nodes=1)
        with pytest.raises(MpiError):
            MpiWorld(Simulator(), fabric, [])

    def test_unknown_node_rejected(self):
        fabric = Fabric(params=PARAMS, num_nodes=2)
        with pytest.raises(MpiError):
            MpiWorld(Simulator(), fabric, [0, 5])

    def test_bad_port_mapping_rejected(self):
        fabric = Fabric(params=PARAMS, num_nodes=2, ports_per_node=1)
        with pytest.raises(MpiError, match="port"):
            MpiWorld(Simulator(), fabric, [0, 1], rank_to_port=[0, 1])

    def test_port_mapping_length_checked(self):
        fabric = Fabric(params=PARAMS, num_nodes=2)
        with pytest.raises(MpiError, match="length"):
            MpiWorld(Simulator(), fabric, [0, 1], rank_to_port=[0])

    def test_comm_world_properties(self):
        world = make_world(6)
        comm = world.comm_world(3)
        assert comm.rank == 3
        assert comm.size == 6


class TestSubgroupCommunicators:
    def test_subgroup_ranks_are_local(self):
        world = make_world(6)
        comms = world.subgroup_comm([4, 1, 5])
        assert [c.rank for c in comms] == [0, 1, 2]
        assert all(c.size == 3 for c in comms)

    def test_duplicate_ranks_rejected(self):
        world = make_world(4)
        with pytest.raises(MpiError, match="duplicate"):
            world.subgroup_comm([1, 1])

    def test_out_of_world_rank_rejected(self):
        world = make_world(4)
        with pytest.raises(MpiError):
            world.subgroup_comm([0, 9])

    def test_traffic_isolated_between_communicators(self):
        """A message on a subgroup communicator never matches world receives."""
        world = make_world(3)
        sub = world.subgroup_comm([0, 1])
        results = {}

        def sub_sender():
            yield from sub[0].send(1, 64, tag=7)
            results["sub_sent"] = True

        def sub_receiver():
            status = yield from sub[1].recv(0, tag=7)
            results["sub_recv"] = status.nbytes

        def world_pair(comm):
            if comm.rank == 0:
                yield from comm.send(1, 128, tag=7)
            elif comm.rank == 1:
                status = yield from comm.recv(0, tag=7)
                results["world_recv"] = status.nbytes

        world.sim.process(sub_sender(), name="sub-0")
        world.sim.process(sub_receiver(), name="sub-1")
        world.spawn(world_pair)
        world.sim.run()
        assert results["sub_recv"] == 64
        assert results["world_recv"] == 128

    def test_subgroup_uses_world_rank_placement(self):
        """Local rank i talks to the world rank group[i], not world rank i."""
        world = make_world(4)
        comms = world.subgroup_comm([3, 2])
        log = []

        def sender():
            yield from comms[0].send(1, 32, tag=1)

        def receiver():
            status = yield from comms[1].recv(0, tag=1)
            log.append(status.source)

        world.sim.process(sender())
        world.sim.process(receiver())
        world.sim.run()
        assert log == [0]  # local source rank


class TestSpawn:
    def test_spawn_subset_of_ranks(self):
        world = make_world(4)
        seen = []

        def body(comm):
            seen.append(comm.rank)
            return None
            yield  # pragma: no cover

        world.spawn(body, ranks=[1, 3])
        world.sim.run()
        assert sorted(seen) == [1, 3]

    def test_quiescent_after_clean_run(self):
        world = make_world(2)

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(1, 10)
            else:
                yield from comm.recv(0)

        world.run(body)
        assert world.quiescent()
