"""Calibration of the barrier models (extension).

Barriers carry no payload, so the two-parameter canonical system of §4.2
degenerates: every equation has ``c_β = 0`` and only α is identifiable.
The in-context experiment is the barrier itself, timed on the root, run at
several communicator sizes (the x-axis that varies here is ``P``, not
``m``); α comes from the least-squares line through the origin,

    α = Σ c_i·T_i / Σ c_i²,

which is the maximum-likelihood estimate under i.i.d. noise for the model
``T_i = c_i·α``.
"""

from __future__ import annotations

from typing import Sequence

from repro.clusters.spec import ClusterSpec
from repro.collectives.barrier import BARRIER_ALGORITHMS
from repro.errors import EstimationError
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.estimation.workflow import PlatformModel
from repro.measure import run_timed
from repro.models.barrier_models import DERIVED_BARRIER_MODELS
from repro.models.gamma import GammaFunction
from repro.models.hockney import HockneyParams


def time_barrier(
    spec: ClusterSpec,
    algorithm: str,
    procs: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "global",
) -> float:
    """Time one barrier (global completion by default)."""
    entry = BARRIER_ALGORITHMS[algorithm]

    def program(comm):
        yield from entry(comm)

    return run_timed(spec, program, procs, root=root, seed=seed, policy=policy)


def estimate_barrier_alpha(
    spec: ClusterSpec,
    algorithm: str,
    *,
    proc_counts: Sequence[int],
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
) -> tuple[HockneyParams, dict[int, SampleStats]]:
    """Fit the per-algorithm α from barriers at several sizes."""
    if len(proc_counts) < 1:
        raise EstimationError("need at least one communicator size")
    model = DERIVED_BARRIER_MODELS[algorithm](GammaFunction.ideal())
    numerator = 0.0
    denominator = 0.0
    stats: dict[int, SampleStats] = {}
    for index, procs in enumerate(proc_counts):
        if not 2 <= procs <= spec.max_procs:
            raise EstimationError(f"{spec.name}: invalid procs {procs}")
        count = model.coefficients(procs).c_alpha
        if count <= 0:
            raise EstimationError(f"{algorithm}: zero message count at P={procs}")

        def measure_once(rep_seed: int, procs: int = procs) -> float:
            return time_barrier(spec, algorithm, procs, seed=rep_seed)

        sample = adaptive_measure(
            measure_once,
            precision=precision,
            max_reps=max_reps,
            seed=seed + 53_777 * (index + 1),
        )
        stats[procs] = sample
        numerator += count * sample.mean
        denominator += count * count
    alpha = numerator / denominator
    return HockneyParams(alpha=alpha, beta=0.0), stats


def calibrate_barrier(
    spec: ClusterSpec,
    *,
    proc_counts: Sequence[int] | None = None,
    algorithms: Sequence[str] | None = None,
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
) -> PlatformModel:
    """Calibrate every barrier algorithm; returns a selectable platform."""
    if proc_counts is None:
        top = spec.max_procs
        proc_counts = sorted({max(2, top // 8), max(2, top // 3), max(2, top // 2)})
    if algorithms is None:
        algorithms = sorted(DERIVED_BARRIER_MODELS)
    parameters: dict[str, HockneyParams] = {}
    for index, name in enumerate(algorithms):
        params, _stats = estimate_barrier_alpha(
            spec,
            name,
            proc_counts=proc_counts,
            precision=precision,
            max_reps=max_reps,
            seed=seed + 7_103 * (index + 1),
        )
        parameters[name] = params
    return PlatformModel(
        cluster=spec.name,
        segment_size=0,
        gamma=GammaFunction.ideal(),
        parameters=parameters,
        model_family="barrier_derived",
    )
