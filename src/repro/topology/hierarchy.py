"""Rack-aware virtual trees for hierarchical collectives.

These builders bridge the two "topology" concepts in this codebase: the
*physical* fabric (:mod:`repro.fabric` — racks, uplinks) and the
*virtual* trees collective algorithms route over (:mod:`repro.topology`).
A hierarchical broadcast crosses each oversubscribed rack uplink exactly
once by sending inter-rack along a binomial tree over one *leader* per
rack and intra-rack from each leader to its local members (linear).

Unlike the Open MPI tree builders these cannot be cached on
``(size, root)`` alone: the shape also depends on the rank→group map, so
they are rebuilt per communicator (cheap — a single O(size) pass).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TopologyError
from repro.topology.builders import build_binomial_tree
from repro.topology.tree import Tree


def build_hierarchy_tree(group_of: Sequence[int], root: int) -> Tree:
    """A two-level tree: binomial over group leaders, linear within groups.

    ``group_of[r]`` assigns communicator rank ``r`` to a group (a rack on
    multi-level fabrics, a node otherwise).  The root leads its own
    group; every other group is led by its lowest rank.  Leaders form a
    binomial tree rooted at the root's leader (inter-group edges are
    listed *first* in each leader's child order, so uplink traffic
    starts before the local fan-out serialises the leader's NIC).
    """
    size = len(group_of)
    if not 0 <= root < size:
        raise TopologyError(f"root {root} outside 0..{size - 1}")
    members: dict[int, list[int]] = {}
    for rank in range(size):
        members.setdefault(group_of[rank], []).append(rank)
    leaders = []
    for key in sorted(members):
        group = members[key]
        leaders.append(root if root in group else group[0])
    # Root's group first so the leader binomial tree is rooted there.
    leaders.sort(key=lambda leader: (leader != root, leader))
    parent = [-1] * size
    children: list[list[int]] = [[] for _ in range(size)]
    leader_tree = build_binomial_tree(len(leaders), 0)
    for index, leader in enumerate(leaders):
        if index == 0:
            continue
        up = leaders[leader_tree.parent[index]]
        parent[leader] = up
        children[up].append(leader)
    for group in members.values():
        leader = root if root in group else group[0]
        for rank in group:
            if rank != leader:
                parent[rank] = leader
                children[leader].append(rank)
    tree = Tree(
        root=root,
        parent=tuple(parent),
        children=tuple(tuple(kids) for kids in children),
    )
    tree.validate()
    return tree


def comm_group_of(comm) -> tuple[int, ...]:
    """The rack (or node) group of each rank of ``comm``.

    On a multi-level fabric the world carries ``node_to_rack`` and ranks
    group by rack; on flat fabrics ranks group by node, which makes the
    hierarchical algorithms meaningful (if rarely optimal) there too.
    """
    world = comm.world
    racks = getattr(world, "node_to_rack", None)
    group_of = []
    for local in range(comm.size):
        node = world.rank_to_node[comm.group[local]]
        group_of.append(racks[node] if racks is not None else node)
    return tuple(group_of)
