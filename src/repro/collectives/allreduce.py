"""Allreduce algorithms (extension: the paper's future-work collectives).

Ports of ``coll_base_allreduce.c``: recursive doubling and the
bandwidth-optimal ring (reduce-scatter phase followed by an allgather
phase).  ``nbytes`` is the full vector size.

Tag discipline: every tag used within one schedule is structurally
distinct for *any* communicator size.  Recursive doubling reserves
``TAG_ALLREDUCE`` for the surplus fold-in contribution, ``+1+r`` for
round ``r`` and ``+1+rounds`` for the final-vector return; the ring
offsets its allgather phase by the reduce-scatter phase's step count so
the two phases never alias, however large ``P`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.collectives.reduce import DEFAULT_OP_BYTE_TIME
from repro.mpi.communicator import Communicator
from repro.sim.engine import SimGen

#: Tag space for allreduce rounds.
TAG_ALLREDUCE = 8_000


def allreduce_recursive_doubling(
    comm: Communicator, nbytes: int, op_byte_time: float = DEFAULT_OP_BYTE_TIME
) -> SimGen:
    """Recursive doubling: log2 rounds of full-vector exchanges.

    Non-power-of-two sizes fold the surplus ranks into the nearest power of
    two first; the surplus ranks contribute their vector, sit out the
    doubling rounds, and receive the *final* reduced vector back — never a
    partial — exactly as Open MPI does.
    """
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    rank = comm.rank
    base = 1
    rounds = 0
    while base * 2 <= size:
        base *= 2
        rounds += 1
    surplus = size - base
    #: One tag past the last round tag — cannot alias any round for any P.
    return_tag = TAG_ALLREDUCE + 1 + rounds

    if rank >= base:
        yield from comm.send(rank - base, nbytes, tag=TAG_ALLREDUCE)
        yield from comm.recv(rank - base, tag=return_tag)
        return
    if rank < surplus:
        yield from comm.recv(rank + base, tag=TAG_ALLREDUCE)
        yield from comm.compute(nbytes * op_byte_time)

    distance = 1
    round_index = 0
    while distance < base:
        partner = rank ^ distance
        tag = TAG_ALLREDUCE + 1 + round_index
        yield from comm.sendrecv(
            dest=partner, nbytes=nbytes, source=partner, sendtag=tag, recvtag=tag
        )
        yield from comm.compute(nbytes * op_byte_time)
        distance *= 2
        round_index += 1

    if rank < surplus:
        yield from comm.send(rank + base, nbytes, tag=return_tag)


def allreduce_ring(
    comm: Communicator, nbytes: int, op_byte_time: float = DEFAULT_OP_BYTE_TIME
) -> SimGen:
    """Ring allreduce: reduce-scatter then allgather, 2(P-1) steps.

    Each step moves one P-th of the vector; total traffic per rank is
    ``2 m (P-1)/P`` — the bandwidth-optimal schedule popularised by deep
    learning frameworks, present in Open MPI as ``allreduce_intra_ring``.
    """
    size = comm.size
    if size == 1 or nbytes == 0:
        return
    rank = comm.rank
    right = (rank + 1) % size
    left = (rank - 1 + size) % size
    chunk = max(1, nbytes // size)

    # Phase 1: reduce-scatter — each step forwards a partial block and
    # combines the one that arrives.
    for step in range(size - 1):
        tag = TAG_ALLREDUCE + 200 + step
        yield from comm.sendrecv(
            dest=right, nbytes=chunk, source=left, sendtag=tag, recvtag=tag
        )
        yield from comm.compute(chunk * op_byte_time)

    # Phase 2: allgather of the reduced blocks.  Offsetting by phase 1's
    # step count keeps the two phases' tags disjoint at any P (a fixed
    # offset would alias once P-1 outgrew it).
    for step in range(size - 1):
        tag = TAG_ALLREDUCE + 200 + (size - 1) + step
        yield from comm.sendrecv(
            dest=right, nbytes=chunk, source=left, sendtag=tag, recvtag=tag
        )


@dataclass(frozen=True)
class AllreduceAlgorithm:
    """Catalogue entry for one allreduce algorithm."""

    name: str
    display_name: str
    func: Callable[[Communicator, int], SimGen]

    def __call__(self, comm: Communicator, nbytes: int) -> SimGen:
        return self.func(comm, nbytes)


#: Allreduce algorithm catalogue.
ALLREDUCE_ALGORITHMS: dict[str, AllreduceAlgorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        AllreduceAlgorithm(
            "recursive_doubling", "Recursive doubling", allreduce_recursive_doubling
        ),
        AllreduceAlgorithm("ring", "Ring (reduce-scatter + allgather)", allreduce_ring),
    )
}
