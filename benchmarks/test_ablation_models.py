"""Ablation A1: implementation-derived vs traditional model structure.

The paper's contribution 1 is deriving the model equations from the
implementation (segmentation, γ-weighted per-stage fan-out) instead of the
textbook definition.  This ablation isolates the *model structure*: both
families get the same per-algorithm in-context parameter estimation; only
the equations differ.  The derived family must select better.
"""

import pytest

from repro.bench.runner import selection_comparison
from repro.estimation.workflow import calibrate_platform
from repro.selection.model_based import ModelBasedSelector

from conftest import MAX_REPS, PAPER_SIZES, TABLE3_PROCS


@pytest.fixture(scope="module")
def traditional_calibration(grisou):
    return calibrate_platform(
        grisou,
        procs=40,
        sizes=PAPER_SIZES,
        max_reps=MAX_REPS,
        model_family="traditional",
    )


def test_ablation_model_structure(
    benchmark, grisou, grisou_calibration, traditional_calibration, grisou_oracle
):
    """Prints and checks derived-vs-traditional selection quality."""
    procs = TABLE3_PROCS["grisou"]

    def compare_families():
        rows = {}
        for label, calibration in (
            ("derived", grisou_calibration),
            ("traditional", traditional_calibration),
        ):
            rows[label] = selection_comparison(
                grisou,
                calibration.platform,
                procs,
                PAPER_SIZES,
                oracle=grisou_oracle,
            )
        return rows

    rows = benchmark.pedantic(compare_families, rounds=1, iterations=1)

    print()
    print(f"Ablation A1 (grisou, P={procs}): selection degradation vs best [%]")
    print(f"{'m':>10}  {'derived':>10}  {'traditional':>12}")
    for derived_row, trad_row in zip(rows["derived"], rows["traditional"]):
        print(
            f"{derived_row.nbytes:>10}  {derived_row.model_degradation:>10.1f}"
            f"  {trad_row.model_degradation:>12.1f}"
        )

    derived_total = sum(r.model_degradation for r in rows["derived"])
    traditional_total = sum(r.model_degradation for r in rows["traditional"])
    print(f"total: derived={derived_total:.1f}% traditional={traditional_total:.1f}%")

    # The derived structure must not lose to the traditional one, and the
    # derived selection stays near-optimal.
    assert derived_total <= traditional_total + 1.0
    assert max(r.model_degradation for r in rows["derived"]) < 20.0


def test_traditional_structure_misranks_somewhere(
    grisou, traditional_calibration, grisou_oracle
):
    """The traditional equations pick a non-optimal algorithm for at least
    one (P, m) where the derived equations pick the best (or vice versa the
    traditional pick degrades more) — the Fig. 1 inaccuracy made concrete."""
    selector = ModelBasedSelector(traditional_calibration.platform)
    procs = TABLE3_PROCS["grisou"]
    degradations = [
        grisou_oracle.degradation(procs, size, selector.select(procs, size))
        for size in PAPER_SIZES
    ]
    assert max(degradations) > 5.0, degradations
