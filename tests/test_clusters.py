"""Tests for cluster specs and the paper-platform presets."""

import pytest

from repro.clusters import GRISOU, GROS, MINICLUSTER, PRESETS, ClusterSpec, get_preset
from repro.errors import SimulationError
from repro.sim.network import NetworkParams


class TestPresets:
    def test_lookup(self):
        assert get_preset("grisou") is GRISOU
        assert get_preset("gros") is GROS

    def test_unknown_preset(self):
        with pytest.raises(SimulationError, match="unknown cluster"):
            get_preset("frontier")

    def test_registry_complete(self):
        assert set(PRESETS) >= {"grisou", "gros", "minicluster"}

    def test_grisou_matches_paper_inventory(self):
        """§5.1: 51 nodes, 2 CPUs/node, 10 GbE; up to 90 processes used."""
        assert GRISOU.nodes == 51
        assert GRISOU.procs_per_node == 2
        assert GRISOU.max_procs >= 90
        assert GRISOU.network.byte_time_out == pytest.approx(0.8e-9)

    def test_gros_matches_paper_inventory(self):
        """§5.1: 124 nodes, 1 CPU/node, 25 GbE; up to 124 processes used."""
        assert GROS.nodes == 124
        assert GROS.procs_per_node == 1
        assert GROS.max_procs == 124
        assert GROS.network.byte_time_out == pytest.approx(0.32e-9)

    def test_gros_is_faster_fabric_than_grisou(self):
        assert GROS.network.latency < GRISOU.network.latency
        assert GROS.network.byte_time_out < GRISOU.network.byte_time_out

    def test_describe_mentions_link_speed(self):
        assert "10 Gbit/s" in GRISOU.describe()
        assert "25 Gbit/s" in GROS.describe()


class TestMapping:
    def test_block_mapping_fills_slots(self):
        assert GRISOU.rank_to_node(5) == [0, 0, 1, 1, 2]

    def test_spread_mapping_round_robins(self):
        assert GRISOU.rank_to_node(5, mapping="spread") == [0, 1, 2, 3, 4]

    def test_single_proc_per_node_cluster_mappings_agree(self):
        assert GROS.rank_to_node(6) == GROS.rank_to_node(6, mapping="spread")

    def test_too_many_procs_rejected(self):
        with pytest.raises(SimulationError):
            GROS.rank_to_node(GROS.max_procs + 1)

    def test_unknown_mapping_rejected(self):
        with pytest.raises(SimulationError, match="unknown mapping"):
            GRISOU.rank_to_node(4, mapping="diagonal")


class TestWorldConstruction:
    def test_world_has_requested_ranks(self):
        world = MINICLUSTER.make_world(6)
        assert world.size == 6

    def test_grisou_ranks_on_shared_node_use_distinct_ports(self):
        world = GRISOU.make_world(4)
        assert world.rank_to_node[0] == world.rank_to_node[1]
        assert world.rank_to_port[0] != world.rank_to_port[1]

    def test_noise_override(self):
        noisy = GRISOU.make_world(2, seed=1, noise_sigma=0.1)
        clean = GRISOU.make_world(2, seed=1, noise_sigma=0.0)
        assert noisy.fabric.noise.factor() != 1.0
        assert clean.fabric.noise.factor() == 1.0

    def test_with_noise_copies(self):
        quiet = GRISOU.with_noise(0.0)
        assert quiet.noise_sigma == 0.0
        assert GRISOU.noise_sigma != 0.0
        assert quiet.network is GRISOU.network

    def test_invalid_spec_fields_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSpec(
                name="bad",
                nodes=0,
                procs_per_node=1,
                network=MINICLUSTER.network,
            )
        with pytest.raises(SimulationError):
            ClusterSpec(
                name="bad",
                nodes=2,
                procs_per_node=1,
                network=MINICLUSTER.network,
                nics_per_node=0,
            )


class TestDeterminism:
    def test_same_seed_same_measurement(self):
        from repro.measure import time_bcast
        from repro.units import KiB

        a = time_bcast(GRISOU, "binomial", 8, 64 * KiB, 8 * KiB, seed=3)
        b = time_bcast(GRISOU, "binomial", 8, 64 * KiB, 8 * KiB, seed=3)
        assert a == b

    def test_different_seed_different_measurement_with_noise(self):
        from repro.measure import time_bcast
        from repro.units import KiB

        a = time_bcast(GRISOU, "binomial", 8, 64 * KiB, 8 * KiB, seed=3)
        b = time_bcast(GRISOU, "binomial", 8, 64 * KiB, 8 * KiB, seed=4)
        assert a != b
