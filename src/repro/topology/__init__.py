"""Virtual topologies for tree-based collective algorithms.

Ports of the tree constructions in Open MPI's ``coll/base`` component
(``coll_base_topo.c``): k-ary trees, binomial trees (standard and in-order)
and k-chain trees.  All builders take the communicator size and the root
rank and return a :class:`~repro.topology.tree.Tree` expressed in actual
ranks (the construction happens in root-shifted *virtual* ranks, as in
Open MPI).

These are *virtual* (algorithm) trees, not the physical interconnect —
that lives in :mod:`repro.fabric`.  :mod:`repro.topology.trees` re-exports
the same names under a module whose docstring spells the distinction out.
"""

from repro.topology.builders import (
    TREE_CACHE_MAXSIZE,
    build_binary_tree,
    build_binomial_tree,
    build_chain_tree,
    build_in_order_binomial_tree,
    build_kary_tree,
    clear_tree_caches,
)
from repro.topology.hierarchy import build_hierarchy_tree, comm_group_of
from repro.topology.tree import Tree

__all__ = [
    "TREE_CACHE_MAXSIZE",
    "Tree",
    "build_binary_tree",
    "build_binomial_tree",
    "build_chain_tree",
    "build_hierarchy_tree",
    "build_in_order_binomial_tree",
    "build_kary_tree",
    "clear_tree_caches",
    "comm_group_of",
]
