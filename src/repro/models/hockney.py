"""The Hockney point-to-point model.

Hockney [9] models the time of sending a message of ``m`` bytes between two
processes as ``T_p2p(m) = α + β·m`` where ``α`` is the latency and ``β`` the
reciprocal bandwidth.  All broadcast models in this package are built on
this form; the paper's innovation is *whose* α and β get plugged in
(per-algorithm in-context estimates rather than ping-pong measurements).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HockneyParams:
    """Hockney model parameters: ``T(m) = alpha + beta * m``."""

    #: Latency in seconds.
    alpha: float
    #: Reciprocal bandwidth in seconds per byte.
    beta: float

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ValueError(f"beta must be non-negative, got {self.beta}")

    def p2p_time(self, nbytes: int) -> float:
        """Predicted point-to-point time for a message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        return self.alpha + self.beta * nbytes

    def __str__(self) -> str:
        return f"alpha={self.alpha:.3e} s, beta={self.beta:.3e} s/B"
