"""Models of the allreduce algorithms.

Allreduce is composite: both shipped algorithms are built from simpler
collective phases, and their models add the phases' coefficient forms
(the same linearity in α and β that lets Eq. 7's composite experiment
collapse into one equation).  ``nbytes`` is the full vector size.

Model forms:

* recursive doubling: ``log2(base)`` full-vector exchange rounds over the
  power-of-two core ``base = 2^floor(log2 P)``; a non-power-of-two
  communicator folds its surplus ranks in first and hands them the final
  vector afterwards, adding two full-vector hops to the critical path —
  ``T = (r + 2·[surplus]) · (α + m·β)`` with ``r = log2 base``;
* ring: a reduce-scatter phase and an allgather phase of ``P-1`` steps
  each, every step moving one ``floor(m/P)``-byte chunk —
  ``T = 2(P-1)·α + 2(P-1)·chunk·β``, the bandwidth-optimal schedule.
"""

from __future__ import annotations

from repro.models.base import BcastModel, LinearCoefficients


class _AllreduceModel(BcastModel):
    """Allreduces are unsegmented: the segment size is ignored."""


class RecursiveDoublingAllreduceModel(_AllreduceModel):
    """Recursive doubling with non-power-of-two surplus fold-in."""

    algorithm = "recursive_doubling"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        base = 1
        rounds = 0
        while base * 2 <= procs:
            base *= 2
            rounds += 1
        hops = rounds + (2 if procs > base else 0)
        return LinearCoefficients(float(hops), float(hops) * nbytes)


class RingAllreduceModel(_AllreduceModel):
    """Ring allreduce: reduce-scatter phase + allgather phase."""

    algorithm = "ring"

    def coefficients(
        self, procs: int, nbytes: int, segment_size: int = 0
    ) -> LinearCoefficients:
        del segment_size
        if procs < 2:
            return LinearCoefficients(0.0, 0.0)
        steps = 2.0 * (procs - 1)
        # Mirror the simulator's integer chunking exactly.
        chunk = max(1, nbytes // procs)
        return LinearCoefficients(steps, steps * chunk)


#: Derived allreduce models keyed by the algorithm they describe.
DERIVED_ALLREDUCE_MODELS: dict[str, type[BcastModel]] = {
    model.algorithm: model
    for model in (RecursiveDoublingAllreduceModel, RingAllreduceModel)
}
