"""Extension bench: the paper's method applied to MPI_Reduce (future work).

The paper's conclusion proposes extending the approach to the other
collectives.  This bench runs the full pipeline for the reduce family on
the simulated Gros cluster: γ, per-algorithm α/β from reduce+scatter
experiments, model-based selection — evaluated against the measured best
reduce algorithm at every size.
"""

import pytest

from repro.estimation.reduce_calibration import calibrate_reduce, time_reduce
from repro.models.reduce_models import DERIVED_REDUCE_MODELS
from repro.selection.model_based import ModelBasedSelector

from conftest import MAX_REPS, PAPER_SIZES

PROCS = 100


@pytest.fixture(scope="module")
def reduce_calibration(gros):
    return calibrate_reduce(
        gros, procs=62, sizes=PAPER_SIZES, max_reps=MAX_REPS
    )


def test_extension_reduce_selection(benchmark, gros, reduce_calibration):
    platform, estimates = reduce_calibration
    selector = ModelBasedSelector(platform)

    def select_all():
        return [selector.select(PROCS, nbytes) for nbytes in PAPER_SIZES]

    choices = benchmark.pedantic(select_all, rounds=3, iterations=2)

    print()
    print(f"Model-based MPI_Reduce selection (gros, P={PROCS}):")
    print(f"{'m':>10} {'best':>20} {'model pick':>20} {'deg%':>6}")
    degradations = []
    cache: dict = {}

    def measured(name, nbytes):
        key = (name, nbytes)
        if key not in cache:
            cache[key] = time_reduce(gros, name, PROCS, nbytes, 8 * 1024)
        return cache[key]

    for choice, nbytes in zip(choices, PAPER_SIZES):
        times = {name: measured(name, nbytes) for name in DERIVED_REDUCE_MODELS}
        best = min(times, key=times.get)
        degradation = 100 * (times[choice.algorithm] - times[best]) / times[best]
        degradations.append(degradation)
        print(f"{nbytes:>10} {best:>20} {choice.algorithm:>20} {degradation:>6.1f}")

    # The method transfers: reduce selection is near-optimal across the
    # sweep and never picks the pathological linear algorithm at scale.
    assert max(degradations) < 35.0, degradations
    assert all(c.algorithm != "linear" for c in choices[-5:])
    # And every choice is a valid reduce selection.
    assert all(c.operation == "reduce" for c in choices)
