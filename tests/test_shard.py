"""Sharded serving: SO_REUSEPORT workers, supervisor, metrics merge."""

import json
import os
import signal
import socket
import time
import urllib.request

import pytest

from repro.clusters import MINICLUSTER
from repro.errors import PortInUseError, ServiceError
from repro.service import build_artifact, merge_metrics_texts
from repro.service.shard import ShardSupervisor, _make_admin_server, reuseport_socket
from repro.units import KiB, MiB, log_spaced_sizes

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="platform lacks SO_REUSEPORT",
)


@pytest.fixture(scope="module")
def artifact(mini_platform):
    return build_artifact(
        MINICLUSTER,
        proc_points=range(2, 17, 2),
        size_points=log_spaced_sizes(8 * KiB, 1 * MiB, 6),
        platforms={"bcast": mini_platform},
    )


@pytest.fixture(scope="module")
def artifact_dir(artifact, tmp_path_factory):
    directory = tmp_path_factory.mktemp("shard-artifacts")
    artifact.save(directory / "minicluster.json")
    return directory


def raw_select(port: int, payload: dict) -> tuple[int, dict]:
    body = json.dumps(payload).encode()
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.sendall(
        b"POST /select HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
        b"Content-Length: %d\r\n\r\n" % len(body) + body
    )
    chunks = []
    while True:
        data = sock.recv(65536)
        if not data:
            break
        chunks.append(data)
    sock.close()
    blob = b"".join(chunks)
    head, _, resp_body = blob.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(resp_body)


class TestReuseportSocket:
    def test_two_sockets_share_a_port(self):
        first = reuseport_socket("127.0.0.1", 0)
        port = first.getsockname()[1]
        second = reuseport_socket("127.0.0.1", port)
        first.close()
        second.close()

    def test_conflict_with_plain_socket(self):
        plain = socket.socket()
        plain.bind(("127.0.0.1", 0))
        port = plain.getsockname()[1]
        with pytest.raises(PortInUseError):
            reuseport_socket("127.0.0.1", port)
        plain.close()


class TestMergeMetricsTexts:
    COUNTERS = (
        "# HELP repro_x_total Things.\n"
        "# TYPE repro_x_total counter\n"
        'repro_x_total{{op="a"}} {a}\n'
        "repro_x_total {plain}\n"
    )

    def test_counters_summed(self):
        merged = merge_metrics_texts([
            self.COUNTERS.format(a=3, plain=10),
            self.COUNTERS.format(a=4, plain=32),
        ])
        assert 'repro_x_total{op="a"} 7' in merged
        assert "repro_x_total 42" in merged

    def test_gauges_maxed(self):
        text = (
            "# HELP repro_g Current level.\n"
            "# TYPE repro_g gauge\nrepro_g {value}\n"
        )
        merged = merge_metrics_texts(
            [text.format(value=3.0), text.format(value=11.0)]
        )
        assert "repro_g 11" in merged

    def test_histograms_summed(self):
        text = (
            "# HELP repro_h Latency.\n"
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{{le="0.1"}} {low}\n'
            'repro_h_bucket{{le="+Inf"}} {total}\n'
            "repro_h_sum {sum}\n"
            "repro_h_count {total}\n"
        )
        merged = merge_metrics_texts([
            text.format(low=2, total=5, sum=0.5),
            text.format(low=3, total=6, sum=0.25),
        ])
        assert 'repro_h_bucket{le="0.1"} 5' in merged
        assert 'repro_h_bucket{le="+Inf"} 11' in merged
        assert "repro_h_sum 0.75" in merged
        assert "repro_h_count 11" in merged

    def test_hit_ratio_recomputed_not_averaged(self):
        def worker(hits, misses):
            return (
                "# TYPE repro_query_cache_hits_total counter\n"
                f"repro_query_cache_hits_total {hits}\n"
                "# TYPE repro_query_cache_misses_total counter\n"
                f"repro_query_cache_misses_total {misses}\n"
                "# TYPE repro_query_cache_hit_ratio gauge\n"
                f"repro_query_cache_hit_ratio {hits / (hits + misses)}\n"
            )

        # max() of the per-worker ratios would be 0.9; the true fleet
        # ratio is (90 + 10) / (100 + 100).
        merged = merge_metrics_texts([worker(90, 10), worker(10, 90)])
        ratio_line = next(
            line for line in merged.splitlines()
            if line.startswith("repro_query_cache_hit_ratio")
        )
        assert float(ratio_line.split()[-1]) == pytest.approx(0.5)

    def test_order_follows_first_appearance(self):
        merged = merge_metrics_texts([
            "# TYPE repro_a counter\nrepro_a 1\n"
            "# TYPE repro_b counter\nrepro_b 1\n",
            "# TYPE repro_c counter\nrepro_c 1\n"
            "# TYPE repro_a counter\nrepro_a 1\n",
        ])
        positions = [merged.index(f"# TYPE repro_{x}") for x in "abc"]
        assert positions == sorted(positions)


class TestShardSupervisor:
    @pytest.fixture(scope="class")
    def fleet(self, artifact_dir):
        supervisor = ShardSupervisor(
            artifact_dir, port=0, workers=2, cache_size=64
        )
        supervisor.start()
        yield supervisor
        supervisor.stop()

    def test_rejects_zero_workers(self, artifact_dir):
        with pytest.raises(ServiceError):
            ShardSupervisor(artifact_dir, workers=0)

    def test_queries_answered_and_aggregated(self, fleet):
        issued = 6
        for _ in range(issued):
            status, payload = raw_select(fleet.port, {
                "cluster": "minicluster", "operation": "bcast",
                "procs": 8, "nbytes": 64 * KiB,
            })
            assert status == 200
            assert payload["algorithm"]
        text = fleet.metrics_text()
        served = sum(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_select_queries_total")
        )
        assert served >= issued
        assert "repro_shard_workers 2.0" in text

    def test_health_reports_fleet(self, fleet):
        health = fleet.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["alive"] == 2

    def test_dead_worker_restarted_with_new_pid(self, fleet):
        victim = fleet.handles()[0]
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            handles = fleet.handles()
            if (
                all(handle.process.is_alive() for handle in handles)
                and handles[0].pid != victim.pid
            ):
                break
            time.sleep(0.2)
        else:
            pytest.fail("worker was not restarted")
        assert fleet.restarts >= 1
        status, _ = raw_select(fleet.port, {
            "cluster": "minicluster", "operation": "bcast",
            "procs": 4, "nbytes": 32 * KiB,
        })
        assert status == 200
        assert "repro_shard_worker_restarts_total 1" in fleet.metrics_text()

    def test_reload_propagates_to_workers(self, fleet, artifact,
                                          artifact_dir, mini_platform):
        from repro.service import build_artifact as rebuild

        coarse = rebuild(
            MINICLUSTER,
            proc_points=(2, 8),
            size_points=(8 * KiB, 1 * MiB),
            platforms={"bcast": mini_platform},
        )
        coarse.save(artifact_dir / "coarse.json")
        try:
            fleet.reload()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                counts = []
                for handle in fleet.handles():
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{handle.admin_port}/artifacts",
                        timeout=5,
                    ) as response:
                        counts.append(
                            len(json.load(response)["artifacts"])
                        )
                if counts and all(count == 2 for count in counts):
                    break
                time.sleep(0.2)
            else:
                pytest.fail("reload did not reach every worker")
        finally:
            (artifact_dir / "coarse.json").unlink()
            fleet.reload()

    def test_admin_endpoint(self, fleet):
        admin = _make_admin_server(fleet, "127.0.0.1", 0)
        import threading

        thread = threading.Thread(target=admin.serve_forever, daemon=True)
        thread.start()
        port = admin.server_address[1]
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10
            ) as response:
                assert b"repro_shard_workers" in response.read()
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ) as response:
                assert json.load(response)["workers"] == 2
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/workers", timeout=10
            ) as response:
                assert len(json.load(response)["workers"]) == 2
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/reload", method="POST", data=b""
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert json.load(response)["reloaded"] == 2
        finally:
            admin.shutdown()
            admin.server_close()
