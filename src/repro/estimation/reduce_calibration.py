"""Calibration of the reduce models (future-work extension).

The paper's α/β experiment appends a gather to the broadcast so the
experiment finishes on the root *and* so the varying gather size spreads
the canonical x_i (for segmented algorithms the per-segment size is
constant, so the reduce alone would give a singular system).  The dual
construction for reductions: the reduce under test followed by a linear
scatter of ``m_g`` bytes per rank from the root — the composite experiment
again starts and finishes on the root, and the scatter contributes the
same ``(P-1, (P-1)·m_g)`` coefficient row the gather does for broadcasts.
"""

from __future__ import annotations

from typing import Sequence

from repro.clusters.spec import ClusterSpec
from repro.collectives.reduce import REDUCE_ALGORITHMS
from repro.errors import EstimationError
from repro.estimation.alphabeta import DEFAULT_SIZES, AlphaBeta
from repro.estimation.gamma import (
    DEFAULT_MAX_PROCS,
    DEFAULT_SEGMENT_SIZE,
    estimate_gamma,
)
from repro.estimation.regression import get_regressor
from repro.estimation.statistics import SampleStats, adaptive_measure
from repro.estimation.workflow import PlatformModel
from repro.collectives.scatter import SCATTER_ALGORITHMS
from repro.estimation.alphabeta import DEFAULT_GATHER_BYTES
from repro.measure import run_timed
from repro.models.base import BcastModel
from repro.models.gather_models import linear_gather_coefficients
from repro.models.hockney import HockneyParams
from repro.models.reduce_models import DERIVED_REDUCE_MODELS


def time_reduce(
    spec: ClusterSpec,
    algorithm: str,
    procs: int,
    nbytes: int,
    segment_size: int,
    *,
    root: int = 0,
    seed: int = 0,
    policy: str = "root",
) -> float:
    """Time one reduction; root-timed by default (it ends on the root)."""
    entry = REDUCE_ALGORITHMS[algorithm]

    def program(comm):
        yield from entry(comm, root, nbytes, segment_size)

    return run_timed(spec, program, procs, root=root, seed=seed, policy=policy)


def time_reduce_then_scatter(
    spec: ClusterSpec,
    algorithm: str,
    procs: int,
    nbytes: int,
    segment_size: int,
    scatter_bytes: int,
    *,
    root: int = 0,
    seed: int = 0,
) -> float:
    """The reduce α/β experiment: reduce under test + linear scatter."""
    entry = REDUCE_ALGORITHMS[algorithm]
    scatter = SCATTER_ALGORITHMS["linear"]

    def program(comm):
        yield from entry(comm, root, nbytes, segment_size)
        yield from scatter(comm, root, scatter_bytes)

    return run_timed(spec, program, procs, root=root, seed=seed, policy="root")


def estimate_reduce_alpha_beta(
    spec: ClusterSpec,
    model: BcastModel,
    *,
    procs: int | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    scatter_bytes=DEFAULT_GATHER_BYTES,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
) -> AlphaBeta:
    """Per-algorithm α/β for a reduce algorithm (§4.2 applied to reduce)."""
    if procs is None:
        procs = max(2, spec.max_procs // 2)
    if not 2 <= procs <= spec.max_procs:
        raise EstimationError(f"{spec.name}: procs={procs} outside 2..{spec.max_procs}")
    if len(sizes) < 2:
        raise EstimationError("need at least two message sizes to fit a line")
    fit_fn = get_regressor(regressor)
    scatter_of = (
        scatter_bytes if callable(scatter_bytes) else (lambda _m: scatter_bytes)
    )

    xs: list[float] = []
    ys: list[float] = []
    stats: list[SampleStats] = []
    for index, nbytes in enumerate(sizes):
        m_g = scatter_of(nbytes)
        # The linear scatter's root-side cost has the gather's shape:
        # (P-1) serialised injections of m_g bytes.
        coeffs = model.coefficients(procs, nbytes, segment_size)
        coeffs = coeffs + linear_gather_coefficients(procs, m_g)
        if coeffs.c_alpha <= 0:
            raise EstimationError(
                f"{model.algorithm}: degenerate experiment at m={nbytes}"
            )

        def measure_once(rep_seed: int, nbytes: int = nbytes, m_g: int = m_g) -> float:
            return time_reduce_then_scatter(
                spec, model.algorithm, procs, nbytes, segment_size, m_g,
                seed=rep_seed,
            )

        sample = adaptive_measure(
            measure_once,
            precision=precision,
            max_reps=max_reps,
            seed=seed + 104_729 * (index + 1),
        )
        stats.append(sample)
        xs.append(coeffs.c_beta / coeffs.c_alpha)
        ys.append(sample.mean / coeffs.c_alpha)

    fit = fit_fn(xs, ys)
    return AlphaBeta(
        algorithm=model.algorithm,
        params=HockneyParams(alpha=max(fit.intercept, 0.0), beta=max(fit.slope, 0.0)),
        fit=fit,
        points=tuple(zip(xs, ys)),
        sizes=tuple(sizes),
        stats=tuple(stats),
    )


def calibrate_reduce(
    spec: ClusterSpec,
    *,
    procs: int | None = None,
    algorithms: Sequence[str] | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    gamma_max_procs: int = DEFAULT_MAX_PROCS,
    regressor: str = "huber",
    precision: float = 0.025,
    max_reps: int = 30,
    seed: int = 0,
) -> tuple[PlatformModel, dict[str, AlphaBeta]]:
    """Full reduce calibration: γ plus per-algorithm α/β.

    Returns a :class:`PlatformModel` with ``model_family="reduce_derived"``
    ready for :class:`~repro.selection.model_based.ModelBasedSelector`.
    """
    if algorithms is None:
        algorithms = sorted(DERIVED_REDUCE_MODELS)
    gamma = estimate_gamma(
        spec,
        segment_size=segment_size,
        max_procs=gamma_max_procs,
        precision=precision,
        max_reps=max_reps,
        seed=seed,
    ).function()

    estimates: dict[str, AlphaBeta] = {}
    parameters: dict[str, HockneyParams] = {}
    for index, name in enumerate(algorithms):
        model = DERIVED_REDUCE_MODELS[name](gamma)
        estimate = estimate_reduce_alpha_beta(
            spec,
            model,
            procs=procs,
            sizes=sizes,
            segment_size=segment_size,
            regressor=regressor,
            precision=precision,
            max_reps=max_reps,
            seed=seed + 3_000_017 * (index + 1),
        )
        estimates[name] = estimate
        parameters[name] = estimate.params

    platform = PlatformModel(
        cluster=spec.name,
        segment_size=segment_size,
        gamma=gamma,
        parameters=parameters,
        model_family="reduce_derived",
    )
    return platform, estimates
