"""Human-readable reports of calibrated platform models.

Renders a :class:`~repro.estimation.workflow.PlatformModel` as Markdown:
the γ table with its regression line, each algorithm's closed-form
equation with the fitted numbers substituted, and a prediction grid — the
document a cluster operator would archive next to the calibration JSON.
"""

from __future__ import annotations

from typing import Sequence

from repro.estimation.workflow import PlatformModel
from repro.units import KiB, MiB, format_bytes, format_seconds, log_spaced_sizes

#: Closed-form equation templates per derived model (paper §3 notation).
EQUATIONS = {
    "linear": "T = (P-1)·(α + m·β)",
    "chain": "T = (P-1)·α + (n_s + P - 2)·m_s·β",
    "k_chain": "T = ⌈(P-1)/4⌉·α + (n_s·γ(5) + ⌈(P-1)/4⌉ - 1)·m_s·β",
    "binary": "T = (n_s + H - 1)·γ(3)·(α + m_s·β),  H = ⌈log2(P+1)⌉ - 1",
    "split_binary": "T = (⌈n_s/2⌉ + H - 1)·γ(3)·(α + m_s·β) + (α + m/2·β)",
    "binomial": "T = (n_s·γ(⌈log2 P⌉+1) + Σ γ(⌈log2 P⌉-i+1) - 1)·(α + m_s·β)",
    "scatter_allgather": "T = (⌈log2 P⌉ + P - 1)·α + 2·m·(P-1)/P·β",
    "hierarchical": (
        "T = (n_s·γ(⌈log2 R⌉+g) + Σ γ(⌈log2 R⌉-i+1) + γ(g) - 1)"
        "·(α + m_s·β),  R racks, g ranks/rack"
    ),
    "in_order_binomial": "T = (n_s·γ(⌈log2 P⌉+1) + Σ γ(⌈log2 P⌉-i+1) - 1)·(α + m_s·β)",
    # Barrier models: pure message counts (no payload, no β).
    "recursive_doubling": "T = (⌈log2 P⌉ + 2·[P not power of 2])·α",
    "double_ring": "T = 2P·α",
    "bruck": "T = ⌈log2 P⌉·α",
}


def render_report(
    platform: PlatformModel,
    *,
    procs: Sequence[int] = (16, 64),
    sizes: Sequence[int] | None = None,
) -> str:
    """Render the calibration as a Markdown document."""
    if sizes is None:
        sizes = log_spaced_sizes(8 * KiB, 4 * MiB, 5)
    lines = [
        f"# Platform model: {platform.cluster}",
        "",
        f"* operation: `{platform.operation}`",
        f"* model family: `{platform.model_family}`",
        f"* calibrated segment size: {format_bytes(platform.segment_size)}",
        "",
        "## γ(P)",
        "",
        "| P | γ |",
        "|---|---|",
    ]
    for p, g in sorted(platform.gamma.table.items()):
        lines.append(f"| {p} | {g:.3f} |")
    intercept, slope = platform.gamma.regression_line()
    lines.append("")
    lines.append(
        f"Linear extrapolation beyond P={platform.gamma.max_measured}: "
        f"γ(P) ≈ {intercept:.3f} + {slope:.3f}·P"
    )

    lines += ["", "## Calibrated models", ""]
    for name in platform.algorithms:
        params = platform.parameters[name]
        equation = EQUATIONS.get(name, "T = c_α·α + c_β·β")
        stage = params.p2p_time(platform.segment_size)
        lines.append(f"### {name}")
        lines.append("")
        lines.append(f"    {equation}")
        lines.append("")
        lines.append(
            f"α = {params.alpha:.3e} s, β = {params.beta:.3e} s/B "
            f"(effective segment cost τ = {format_seconds(stage)})"
        )
        lines.append("")

    lines += ["## Prediction grid", ""]
    header = "| P | " + " | ".join(format_bytes(m) for m in sizes) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (len(sizes) + 1))
    for p in procs:
        cells = []
        for m in sizes:
            predictions = platform.predict_all(p, m)
            winner = min(predictions, key=predictions.get)
            cells.append(f"{winner} ({format_seconds(predictions[winner])})")
        lines.append(f"| {p} | " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)
