"""Per-collective calibration pipelines (the multi-collective registry).

The paper's method is collective-agnostic: implementation-derived models
plus per-algorithm α/β estimation apply to any Open MPI collective.  This
module is where that genericity becomes operational — each collective
operation registers one :class:`CalibrationPipeline`, and
:func:`repro.service.artifact.build_artifact` loops over the registry
instead of special-casing operations, so adding a collective to the whole
service stack (decision tables, codegen, artifacts, HTTP server) is one
registration here plus a model family.

A pipeline declares which calibration keyword arguments it *accepts*
(forwarded to the underlying calibration) and which it merely *tolerates*
(meaningful only to sibling pipelines in a combined multi-collective
build, silently dropped).  Anything outside both sets is an error — a
misspelled or genuinely unsupported kwarg must never be discarded.

Built-in pipelines: ``bcast`` (:func:`calibrate_platform`), ``reduce``
(:func:`calibrate_reduce`), ``gather`` (:func:`calibrate_gather`),
``barrier`` (:func:`calibrate_barrier_with_quality`), and the four
whole-suite collectives — ``allreduce``, ``allgather``, ``alltoall`` and
``scatter`` — sharing one direct-calibration body
(:func:`calibrate_collective`).  All of them route
every simulation through the :class:`~repro.exec.runner.ParallelRunner`
handed to :meth:`CalibrationPipeline.calibrate`, prefetching their whole
experiment schedule up front — so builds parallelise and a warm
persistent cache replays with zero simulations, for every collective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.clusters.spec import ClusterSpec
from repro.errors import ArtifactError, EstimationError
from repro.estimation.alphabeta import FitQuality
from repro.estimation.workflow import (
    DEFAULT_QUALITY,
    PlatformModel,
    QualityThresholds,
    calibrate_platform,
)
from repro.exec.runner import ParallelRunner

__all__ = [
    "CalibrationOutcome",
    "CalibrationPipeline",
    "register_pipeline",
    "unregister_pipeline",
    "get_pipeline",
    "registered_collectives",
    "run_pipeline",
]


@dataclass(frozen=True)
class CalibrationOutcome:
    """What a pipeline hands back: the model plus its fit diagnostics."""

    platform: PlatformModel
    #: Per-algorithm fit quality (may be empty for quality-less pipelines).
    quality: dict[str, FitQuality] = field(default_factory=dict)

    def quality_report(self) -> dict[str, dict]:
        """Per-algorithm diagnostics, JSON-ready (for the artifact document)."""
        return {
            name: fit_quality.as_dict()
            for name, fit_quality in sorted(self.quality.items())
        }

    def failing(
        self, thresholds: QualityThresholds = DEFAULT_QUALITY
    ) -> list[str]:
        """Names of algorithms whose fit fails ``thresholds`` (empty = pass)."""
        return [
            name
            for name, fit_quality in sorted(self.quality.items())
            if not fit_quality.ok(
                max_relative_residual=thresholds.max_relative_residual,
                min_converged_fraction=thresholds.min_converged_fraction,
            )
        ]


@dataclass(frozen=True)
class CalibrationPipeline:
    """One collective's route from cluster spec to calibrated platform.

    ``fn(spec, runner=..., **kwargs) -> CalibrationOutcome`` does the
    work; ``accepts`` names the calibration kwargs forwarded to it, and
    ``tolerates`` names kwargs that are dropped because they only concern
    sibling pipelines in a combined multi-collective build.  Kwargs in
    neither set raise :class:`ArtifactError`.  ``size_independent`` marks
    collectives whose decisions do not depend on the message size (the
    barrier), so decision tables collapse to a single size column.
    """

    operation: str
    fn: Callable[..., CalibrationOutcome]
    accepts: frozenset[str]
    tolerates: frozenset[str] = frozenset()
    size_independent: bool = False

    def calibrate(
        self,
        spec: ClusterSpec,
        *,
        runner: ParallelRunner | None = None,
        **kwargs,
    ) -> CalibrationOutcome:
        """Validate and forward ``kwargs``; run the calibration."""
        unsupported = sorted(set(kwargs) - self.accepts - self.tolerates)
        if unsupported:
            raise ArtifactError(
                f"{self.operation} calibration does not support "
                f"{', '.join(unsupported)}; accepts: "
                f"{', '.join(sorted(self.accepts))}"
            )
        forwarded = {
            key: value for key, value in kwargs.items() if key in self.accepts
        }
        return self.fn(spec, runner=runner, **forwarded)


_PIPELINES: dict[str, CalibrationPipeline] = {}


def register_pipeline(
    pipeline: CalibrationPipeline, *, replace: bool = False
) -> None:
    """Register ``pipeline`` for its operation.

    Refuses to overwrite an existing registration unless ``replace=True``
    — silently shadowing a built-in pipeline is almost never intended.
    """
    if pipeline.operation in _PIPELINES and not replace:
        raise ArtifactError(
            f"calibration pipeline for {pipeline.operation!r} already "
            "registered; pass replace=True to override"
        )
    _PIPELINES[pipeline.operation] = pipeline


def unregister_pipeline(operation: str) -> None:
    """Remove a registration (primarily for tests of custom pipelines)."""
    _PIPELINES.pop(operation, None)


def get_pipeline(operation: str) -> CalibrationPipeline:
    """The registered pipeline for ``operation``.

    Raises :class:`ArtifactError` naming the registered collectives when
    there is none.
    """
    try:
        return _PIPELINES[operation]
    except KeyError:
        raise ArtifactError(
            f"no calibration pipeline for collective {operation!r}; "
            f"registered: {', '.join(sorted(_PIPELINES))}; pass a "
            "precomputed platform via platforms={...}"
        ) from None


def registered_collectives() -> list[str]:
    """Operations with a registered pipeline, sorted."""
    return sorted(_PIPELINES)


def run_pipeline(
    spec: ClusterSpec,
    operation: str,
    *,
    runner: ParallelRunner | None = None,
    strict: bool = False,
    thresholds: QualityThresholds = DEFAULT_QUALITY,
    **calib_kwargs,
) -> CalibrationOutcome:
    """Calibrate ``operation`` through its registered pipeline, gated.

    The single entry point shared by a full :func:`~repro.service.
    artifact.build_artifact` and an incremental
    :func:`~repro.tuning.recalibrate.rebuild_artifact`: estimation errors
    become :class:`ArtifactError`, and ``strict=True`` applies the
    quality-threshold gate with the same refusal message the full build
    uses — rebuilds are held to exactly the packaging standard.
    """
    pipeline = get_pipeline(operation)
    try:
        outcome = pipeline.calibrate(spec, runner=runner, **calib_kwargs)
    except EstimationError as error:
        raise ArtifactError(
            f"{operation} calibration failed: {error}"
        ) from error
    if strict:
        failed = outcome.failing(thresholds)
        if failed:
            details = "; ".join(
                f"{name}: {outcome.quality[name].as_dict()}"
                for name in failed
            )
            raise ArtifactError(
                f"strict build refused: {spec.name}: "
                f"{operation} calibration quality gate "
                f"failed for {', '.join(failed)} ({details})"
            )
    return outcome


# -- built-in pipelines ------------------------------------------------------


def _quality_of(estimates: dict) -> dict[str, FitQuality]:
    return {
        name: estimate.quality
        for name, estimate in estimates.items()
        if estimate.quality is not None
    }


def _calibrate_bcast(
    spec: ClusterSpec, *, runner: ParallelRunner | None = None, **kwargs
) -> CalibrationOutcome:
    result = calibrate_platform(spec, runner=runner, **kwargs)
    return CalibrationOutcome(
        platform=result.platform, quality=_quality_of(result.alpha_beta)
    )


def _calibrate_reduce(
    spec: ClusterSpec, *, runner: ParallelRunner | None = None, **kwargs
) -> CalibrationOutcome:
    from repro.estimation.reduce_calibration import calibrate_reduce

    platform, estimates = calibrate_reduce(spec, runner=runner, **kwargs)
    return CalibrationOutcome(
        platform=platform, quality=_quality_of(estimates)
    )


def _calibrate_gather(
    spec: ClusterSpec, *, runner: ParallelRunner | None = None, **kwargs
) -> CalibrationOutcome:
    from repro.estimation.gather_calibration import calibrate_gather

    platform, estimates = calibrate_gather(spec, runner=runner, **kwargs)
    return CalibrationOutcome(
        platform=platform, quality=_quality_of(estimates)
    )


def _make_collective_calibrator(operation: str):
    """A registry ``fn`` bound to one whole-suite collective."""

    def _calibrate(
        spec: ClusterSpec, *, runner: ParallelRunner | None = None, **kwargs
    ) -> CalibrationOutcome:
        from repro.estimation.collective_calibration import (
            calibrate_collective,
        )

        platform, estimates = calibrate_collective(
            spec, operation, runner=runner, **kwargs
        )
        return CalibrationOutcome(
            platform=platform, quality=_quality_of(estimates)
        )

    return _calibrate


def _calibrate_barrier(
    spec: ClusterSpec, *, runner: ParallelRunner | None = None, **kwargs
) -> CalibrationOutcome:
    from repro.estimation.barrier_calibration import (
        calibrate_barrier_with_quality,
    )

    platform, quality = calibrate_barrier_with_quality(
        spec, runner=runner, **kwargs
    )
    return CalibrationOutcome(platform=platform, quality=quality)


register_pipeline(
    CalibrationPipeline(
        operation="bcast",
        fn=_calibrate_bcast,
        accepts=frozenset(
            {
                "procs", "algorithms", "model_family", "estimation",
                "gamma_method", "segment_size", "sizes", "gather_bytes",
                "gamma_max_procs", "regressor", "precision", "max_reps",
                "seed", "screen_mad", "retry_budget", "strict",
                "model_params",
            }
        ),
    )
)

register_pipeline(
    CalibrationPipeline(
        operation="reduce",
        fn=_calibrate_reduce,
        accepts=frozenset(
            {
                "procs", "algorithms", "sizes", "segment_size",
                "gamma_max_procs", "regressor", "precision", "max_reps",
                "seed", "screen_mad", "retry_budget", "model_params",
            }
        ),
    )
)

register_pipeline(
    CalibrationPipeline(
        operation="gather",
        fn=_calibrate_gather,
        accepts=frozenset(
            {
                "procs", "algorithms", "sizes", "regressor", "precision",
                "max_reps", "seed", "screen_mad", "retry_budget",
            }
        ),
        # γ, segmentation and fabric model constants only parameterise
        # sibling pipelines: gather models use the ideal platform function
        # and are unsegmented, with no topology-aware variant yet.
        tolerates=frozenset({"gamma_max_procs", "segment_size", "model_params"}),
    )
)

register_pipeline(
    CalibrationPipeline(
        operation="barrier",
        fn=_calibrate_barrier,
        accepts=frozenset(
            {
                "proc_counts", "algorithms", "precision", "max_reps",
                "seed", "retry_budget",
            }
        ),
        # The barrier sweep varies P, not m: size/segment/γ knobs and the
        # canonical-point screen concern the data-moving siblings only.
        tolerates=frozenset(
            {
                "procs", "sizes", "segment_size", "gamma_max_procs",
                "screen_mad", "regressor", "model_params",
            }
        ),
        size_independent=True,
    )
)

for _operation in ("allreduce", "allgather", "alltoall", "scatter"):
    register_pipeline(
        CalibrationPipeline(
            operation=_operation,
            fn=_make_collective_calibrator(_operation),
            accepts=frozenset(
                {
                    "procs", "algorithms", "sizes", "regressor", "precision",
                    "max_reps", "seed", "screen_mad", "retry_budget",
                }
            ),
            # γ, segmentation and fabric model constants only parameterise
            # sibling pipelines: these families use the ideal platform
            # function and are unsegmented, with no topology-aware variant
            # yet (same rationale as the gather pipeline).
            tolerates=frozenset(
                {"gamma_max_procs", "segment_size", "model_params"}
            ),
        )
    )
del _operation
