"""Property-based validation of the MPI substrate on random schedules.

Hypothesis generates arbitrary *matched* communication schedules — every
send paired with a receive — and the runtime must always complete them
(no spurious deadlock), deliver every byte, and respect the
non-overtaking rule, across eager and rendezvous regimes.
"""

import collections

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.communicator import MpiWorld
from repro.sim.engine import Simulator
from repro.sim.network import Fabric, NetworkParams
from repro.sim.trace import Tracer

PARAMS = NetworkParams(
    latency=5e-6,
    byte_time_out=1e-9,
    byte_time_in=1e-9,
    per_message_overhead=0.5e-6,
    send_overhead=0.3e-6,
    recv_overhead=0.3e-6,
    eager_limit=1024,  # low, so schedules mix eager and rendezvous
    control_latency=4e-6,
    shm_latency=0.3e-6,
    shm_byte_time=0.05e-9,
)


@st.composite
def schedules(draw):
    """A matched schedule: per-rank ordered op lists over a small world."""
    procs = draw(st.integers(2, 5))
    message_count = draw(st.integers(1, 12))
    messages = []
    for index in range(message_count):
        src = draw(st.integers(0, procs - 1))
        dst = draw(st.integers(0, procs - 1).filter(lambda d: d != src))
        nbytes = draw(st.sampled_from([0, 1, 512, 1024, 1025, 8192]))
        messages.append((src, dst, nbytes, 100 + index))
    return procs, messages


def run_schedule(procs, messages, tracer=None):
    """Every rank isends its outgoing messages (in order) and irecvs its
    incoming ones (in order), then waits for everything."""
    fabric = Fabric(params=PARAMS, num_nodes=procs)
    world = MpiWorld(
        Simulator(), fabric, list(range(procs)),
        tracer=tracer or Tracer(enabled=False),
    )
    outgoing = collections.defaultdict(list)
    incoming = collections.defaultdict(list)
    for src, dst, nbytes, tag in messages:
        outgoing[src].append((dst, nbytes, tag))
        incoming[dst].append((src, tag))

    def body(comm):
        requests = []
        for src, tag in incoming[comm.rank]:
            request = yield from comm.irecv(src, tag=tag)
            requests.append(request)
        for dst, nbytes, tag in outgoing[comm.rank]:
            request = yield from comm.isend(dst, nbytes, tag=tag)
            requests.append(request)
        if requests:
            yield from comm.waitall(requests)

    world.run(body)
    return world


class TestRandomSchedules:
    @given(schedule=schedules())
    @settings(max_examples=120, deadline=None)
    def test_matched_schedules_never_deadlock(self, schedule):
        procs, messages = schedule
        world = run_schedule(procs, messages)
        assert world.quiescent()

    @given(schedule=schedules())
    @settings(max_examples=80, deadline=None)
    def test_every_byte_delivered(self, schedule):
        procs, messages = schedule
        tracer = Tracer()
        run_schedule(procs, messages, tracer=tracer)
        sent = sum(nbytes for _, _, nbytes, _ in messages)
        received = sum(e.nbytes for e in tracer.of_kind("recv_complete"))
        assert received == sent
        assert len(tracer.of_kind("recv_complete")) == len(messages)

    @given(schedule=schedules())
    @settings(max_examples=80, deadline=None)
    def test_non_overtaking_per_channel_and_tag(self, schedule):
        """For each (src, dst, tag) channel, receives complete in send order.

        Our schedules give every message a distinct tag, so the property is
        checked per (src, dst) pair via completion-time ordering of the
        sends' posting order.
        """
        procs, messages = schedule
        tracer = Tracer()
        run_schedule(procs, messages, tracer=tracer)
        # Map tag -> per-channel send index.
        send_order = {}
        channel_counter = collections.Counter()
        for src, dst, _nbytes, tag in messages:
            send_order[tag] = channel_counter[(src, dst)]
            channel_counter[(src, dst)] += 1
        # Receive completions per channel must be in ascending send index...
        # for messages of the same protocol class (a later small eager send
        # may legitimately complete before an earlier rendezvous send whose
        # receive was posted in order — MPI only orders the *matching*).
        completions = collections.defaultdict(list)
        for event in tracer.of_kind("recv_complete"):
            completions[(event.peer, event.rank)].append(event.tag)
        for (src, dst), tags in completions.items():
            eager_indices = [
                send_order[tag]
                for tag in tags
                if next(
                    m[2] for m in messages if m[3] == tag
                ) <= PARAMS.eager_limit
            ]
            assert eager_indices == sorted(eager_indices), (src, dst)
